"""repro — reliability assessment of systolic arrays against stuck-at faults.

A full reproduction of Agarwal et al., "Towards Reliability Assessment of
Systolic Arrays against Stuck-at Faults" (DSN 2023, Disrupt track), as a
Python library:

* :mod:`repro.systolic` — a cycle-level, bit-accurate systolic-array
  simulator (OS/WS dataflows, INT8 datapath, named MAC signals) plus a
  cross-validated vectorised engine;
* :mod:`repro.faults` — stuck-at / transient / multi-fault models and the
  injection overlay;
* :mod:`repro.ops` — operation tiling, tiled GEMM and im2col convolution;
* :mod:`repro.gemmini` — a functional Gemmini-like accelerator stack;
* :mod:`repro.core` — the FI campaign framework, fault-pattern extraction,
  the six-class taxonomy, and the analytical pattern predictor;
* :mod:`repro.appfi` — application-level FI with an on-the-fly
  systolic-array hardware model (the paper's proposed LLTFI integration);
* :mod:`repro.nn` — a small quantised DNN inference engine for the
  accuracy-degradation and masking studies;
* :mod:`repro.analysis` — spatial statistics and Fig. 3-style rendering;
* :mod:`repro.checks` — AST-based static analysis enforcing the
  cross-layer invariants (bit-accuracy, signal registry, determinism,
  export hygiene, dataclass contracts) over this code base itself.

Quickstart
----------
>>> from repro import (MeshConfig, Dataflow, Campaign, GemmWorkload)
>>> mesh = MeshConfig.paper()                      # 16x16 INT8
>>> workload = GemmWorkload.square(16, Dataflow.WEIGHT_STATIONARY)
>>> result = Campaign(mesh, workload).run()        # 256 FI experiments
>>> str(result.dominant_class())
'single-column'
"""

from repro.appfi import AppLevelInjector, HardwareModel, attach_permanent_fault
from repro.checks import Finding
from repro.checks import Severity as LintSeverity
from repro.checks import run_checks
from repro.mitigation import (
    AbftGemm,
    OffliningGemm,
    TemporalRedundantGemm,
    run_bist,
    select_dataflow,
)
from repro.core import (
    DiagnosisResult,
    StudyReport,
    VulnerabilityProfile,
    analyze_operation,
    diagnose,
    run_paper_study,
)
from repro.core import (
    Campaign,
    CampaignResult,
    Classification,
    ConvWorkload,
    ExperimentResult,
    FaultPattern,
    FaultSpec,
    FillKind,
    GemmWorkload,
    OperationType,
    PatternClass,
    PredictedPattern,
    classify_pattern,
    extract_pattern,
    paper_configurations,
    paper_state_space,
    predict_class,
    predict_pattern,
)
from repro.faults import (
    FaultInjector,
    FaultSet,
    FaultSite,
    StuckAtFault,
    TransientBitFlip,
)
from repro.gemmini import GemminiAccelerator
from repro.ops import (
    ConvGeometry,
    SystolicConv2d,
    TiledGemm,
    TilingPlan,
    reference_conv2d,
    reference_gemm,
)
from repro.systolic import (
    CycleSimulator,
    Dataflow,
    FunctionalSimulator,
    MeshConfig,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # hardware substrate
    "MeshConfig",
    "Dataflow",
    "CycleSimulator",
    "FunctionalSimulator",
    "GemminiAccelerator",
    # fault models
    "FaultSite",
    "StuckAtFault",
    "TransientBitFlip",
    "FaultSet",
    "FaultInjector",
    # operators
    "TiledGemm",
    "SystolicConv2d",
    "ConvGeometry",
    "TilingPlan",
    "reference_gemm",
    "reference_conv2d",
    # FI framework
    "Campaign",
    "CampaignResult",
    "ExperimentResult",
    "GemmWorkload",
    "ConvWorkload",
    "FaultSpec",
    "FillKind",
    "OperationType",
    "PatternClass",
    "Classification",
    "classify_pattern",
    "FaultPattern",
    "extract_pattern",
    "PredictedPattern",
    "predict_pattern",
    "predict_class",
    "paper_configurations",
    "paper_state_space",
    # application-level FI
    "HardwareModel",
    "AppLevelInjector",
    "attach_permanent_fault",
    # diagnosis, analysis & study
    "diagnose",
    "DiagnosisResult",
    "analyze_operation",
    "VulnerabilityProfile",
    "run_paper_study",
    "StudyReport",
    # static analysis of the code base itself
    "run_checks",
    "Finding",
    "LintSeverity",
    # mitigation
    "AbftGemm",
    "TemporalRedundantGemm",
    "OffliningGemm",
    "run_bist",
    "select_dataflow",
]
