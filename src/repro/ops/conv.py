"""Convolution on the systolic engine, lowered to one big GEMM.

:class:`SystolicConv2d` reproduces the paper's convolution path end to end:
im2col lowering (Section II-B), tiled GEMM execution on the mesh
(Section II-C), and reshaping back to ``(N, K, P, Q)``. The result carries
both the convolution geometry and the GEMM tiling plan, which the
fault-pattern classifier needs to map corrupted GEMM columns back to
corrupted output channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ops.gemm import TiledGemm
from repro.ops.im2col import ConvGeometry, col2im_output, im2col, kernel_to_matrix
from repro.ops.tiling import TilingPlan
from repro.systolic.dataflow import Dataflow

__all__ = ["ConvResult", "SystolicConv2d"]


@dataclass(frozen=True)
class ConvResult:
    """Convolution output plus the lowering metadata that produced it."""

    output: np.ndarray
    geometry: ConvGeometry
    plan: TilingPlan

    @property
    def gemm_view(self) -> np.ndarray:
        """The output viewed as the lowered ``(N*P*Q, K)`` GEMM matrix."""
        g = self.geometry
        return self.output.transpose(0, 2, 3, 1).reshape(g.gemm_m, g.k)


class SystolicConv2d:
    """2-D convolution executed as a tiled GEMM on a systolic engine.

    Parameters
    ----------
    engine:
        Any mesh engine (cycle-accurate or functional).
    dataflow:
        The mapping scheme. The paper evaluates convolutions under WS
        (Table I); OS works as well and is included for the extension
        benches.
    stride, padding:
        Standard convolution hyper-parameters.
    """

    def __init__(
        self,
        engine,
        dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        self.engine = engine
        self.dataflow = dataflow
        self.stride = stride
        self.padding = padding
        self._gemm = TiledGemm(engine)

    def geometry(
        self, inputs: np.ndarray, weights: np.ndarray
    ) -> ConvGeometry:
        """The convolution geometry for the given tensors."""
        return ConvGeometry.from_tensors(
            np.asarray(inputs),
            np.asarray(weights),
            stride=self.stride,
            padding=self.padding,
        )

    def __call__(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> ConvResult:
        """Convolve ``inputs`` (NCHW) with ``weights`` (KCRS).

        Parameters
        ----------
        bias:
            Optional per-output-channel bias of shape ``(K,)``, added to
            every spatial position through the accumulator preload path.

        Returns
        -------
        ConvResult
            ``(N, K, P, Q)`` wrapped-INT32 output with lowering metadata.
        """
        inputs = np.asarray(inputs)
        weights = np.asarray(weights)
        geometry = self.geometry(inputs, weights)
        patches = im2col(inputs, geometry)
        weight_matrix = kernel_to_matrix(weights, geometry)
        gemm_bias = None
        if bias is not None:
            bias = np.asarray(bias)
            if bias.shape != (geometry.k,):
                raise ValueError(
                    f"bias must have shape ({geometry.k},), got {bias.shape}"
                )
            gemm_bias = np.broadcast_to(
                bias.astype(np.int64), (geometry.gemm_m, geometry.k)
            )
        result = self._gemm(patches, weight_matrix, self.dataflow, bias=gemm_bias)
        output = col2im_output(result.output, geometry)
        return ConvResult(output=output, geometry=geometry, plan=result.plan)
