"""Golden (fault-free) reference implementations in plain numpy.

These are the oracles the FI framework diffs against ("ground truth",
Section III-B) and the functional-correctness baseline for every execution
path in the repo. All references use the same wrap-around INT32 semantics
as the hardware, so a golden systolic run must match them bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.ops.im2col import ConvGeometry
from repro.systolic.datatypes import INT8, INT32, IntType, wrap_array

__all__ = ["reference_gemm", "reference_conv2d", "uniform_ones"]


def reference_gemm(
    a: np.ndarray,
    b: np.ndarray,
    bias: np.ndarray | None = None,
    input_dtype: IntType = INT8,
    acc_dtype: IntType = INT32,
) -> np.ndarray:
    """Wrapping-INT32 matrix product, bit-exact with a golden mesh run."""
    a = wrap_array(np.asarray(a), input_dtype)
    b = wrap_array(np.asarray(b), input_dtype)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(
            f"incompatible GEMM operands: {np.asarray(a).shape} @ {np.asarray(b).shape}"
        )
    out = a @ b
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.int64)
    return wrap_array(out, acc_dtype)


def reference_conv2d(
    inputs: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    input_dtype: IntType = INT8,
    acc_dtype: IntType = INT32,
) -> np.ndarray:
    """Direct (non-lowered) convolution with hardware wrap semantics.

    Used to validate the im2col + GEMM path: the two must agree exactly,
    because wrapped addition is associative modulo ``2**width``.
    """
    inputs = wrap_array(np.asarray(inputs), input_dtype)
    weights = wrap_array(np.asarray(weights), input_dtype)
    geometry = ConvGeometry.from_tensors(inputs, weights, stride=stride, padding=padding)
    g = geometry
    if padding:
        inputs = np.pad(
            inputs,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    out = np.zeros((g.n, g.k, g.p, g.q), dtype=np.int64)
    for n in range(g.n):
        for k in range(g.k):
            for p in range(g.p):
                for q in range(g.q):
                    window = inputs[
                        n,
                        :,
                        p * stride : p * stride + g.r,
                        q * stride : q * stride + g.s,
                    ]
                    out[n, k, p, q] = np.sum(window * weights[k])
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape != (g.k,):
            raise ValueError(f"bias must have shape ({g.k},), got {bias.shape}")
        out = out + bias[None, :, None, None]
    return wrap_array(out, acc_dtype)


def uniform_ones(*shape: int) -> np.ndarray:
    """The paper's anti-masking operand: a uniform all-ones matrix.

    Near-zero DNN weights can suppress fault patterns (Challenge 2,
    Section III-A); pattern-extraction campaigns therefore use all-ones
    operands so every fault that can manifest does manifest.
    """
    return np.ones(shape, dtype=np.int64)
