"""Tiled GEMM execution on a (possibly faulty) systolic engine.

:class:`TiledGemm` implements the paper's Section II-C scheme: the operand
matrices are split per a :class:`~repro.ops.tiling.TilingPlan`, each tile
matmul runs on the mesh engine (cycle-accurate or functional), and reduction
tiles accumulate with hardware wrap semantics — mirroring Gemmini's
accumulator SRAM.

Accumulation across reduction tiles is realised through the engine's *bias*
input: reduction tile ``t`` runs with the partial result of tiles
``0..t-1`` preloaded, exactly as Gemmini chains ``COMPUTE`` commands into
the accumulator. This keeps the faulty datapath in the loop for every
reduction step, which matters: a stuck-at fault re-forces the partial sums
of every tile that passes through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ops.tiling import TilingPlan, plan_gemm_tiling
from repro.systolic.dataflow import Dataflow
from repro.systolic.datatypes import wrap_array

__all__ = ["GemmResult", "TiledGemm"]


@dataclass(frozen=True)
class GemmResult:
    """Output of a tiled GEMM plus the decomposition that produced it.

    The tiling plan travels with the data because the fault-pattern
    machinery needs it: the classifier decides "multi-tile" by folding the
    corruption map onto the plan's tile grid.
    """

    output: np.ndarray
    plan: TilingPlan

    @property
    def shape(self) -> tuple[int, int]:
        return self.output.shape  # type: ignore[return-value]


class TiledGemm:
    """Executes arbitrarily-sized GEMMs on a fixed-size mesh engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.systolic.simulator.CycleSimulator` or
        :class:`~repro.systolic.functional.FunctionalSimulator` (anything
        with ``.config`` and ``.matmul(a, b, dataflow, bias)``).
    tile_m, tile_k, tile_n:
        Optional tile-size overrides; default to the mesh extent.
    reduction:
        Where reduction tiles accumulate. ``"mesh"`` (default) chains the
        running partial through the mesh's bias input, so every reduction
        step re-traverses the (possibly faulty) datapath — the behaviour of
        mesh-resident accumulation. ``"memory"`` computes each reduction
        tile independently and adds them in the accumulator SRAM with wrap
        semantics — Gemmini's accumulate-on-write. The two are bit-identical
        on a golden mesh (wrapped addition is associative) and produce the
        same fault-pattern *class* on a faulty one, but can differ in the
        corrupted *values*; the reduction-locus ablation bench quantifies
        this.
    """

    def __init__(
        self,
        engine,
        tile_m: int | None = None,
        tile_k: int | None = None,
        tile_n: int | None = None,
        reduction: str = "mesh",
    ) -> None:
        if reduction not in ("mesh", "memory"):
            raise ValueError(
                f"reduction must be 'mesh' or 'memory', got {reduction!r}"
            )
        self.engine = engine
        self.reduction = reduction
        self._tile_m = tile_m
        self._tile_k = tile_k
        self._tile_n = tile_n

    def plan(self, m: int, k: int, n: int, dataflow: Dataflow) -> TilingPlan:
        """The tiling plan this executor would use for an ``MxKxN`` GEMM."""
        return plan_gemm_tiling(
            m,
            k,
            n,
            self.engine.config,
            dataflow,
            tile_m=self._tile_m,
            tile_k=self._tile_k,
            tile_n=self._tile_n,
        )

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        dataflow: Dataflow,
        bias: np.ndarray | None = None,
    ) -> GemmResult:
        """Compute ``A @ B (+ bias)`` with mesh tiling.

        Parameters
        ----------
        a, b:
            Integer matrices of shape ``(M, K)`` and ``(K, N)``; values are
            wrapped into the mesh's input type, as the load path would.
        bias:
            Optional ``(M, N)`` accumulator initialisation.

        Returns
        -------
        GemmResult
            Wrapped-INT32 output and the tiling plan used.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("operands must be 2-D matrices")
        if a.shape[1] != b.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
            )
        m, k = a.shape
        n = b.shape[1]
        plan = self.plan(m, k, n, dataflow)
        acc_dtype = self.engine.config.acc_dtype

        out = np.zeros((m, n), dtype=np.int64)
        if bias is not None:
            bias = np.asarray(bias)
            if bias.shape != (m, n):
                raise ValueError(
                    f"bias shape {bias.shape} does not match output ({m}, {n})"
                )
            out = wrap_array(bias, acc_dtype)

        for m_range, n_range in plan.output_tiles():
            partial = out[m_range.start : m_range.stop, n_range.start : n_range.stop]
            for k_range in plan.k_tiles:
                a_tile = a[m_range.start : m_range.stop, k_range.start : k_range.stop]
                b_tile = b[k_range.start : k_range.stop, n_range.start : n_range.stop]
                if self.reduction == "mesh":
                    partial = self.engine.matmul(
                        a_tile, b_tile, dataflow, bias=partial
                    )
                else:
                    product = self.engine.matmul(a_tile, b_tile, dataflow)
                    partial = wrap_array(partial + product, acc_dtype)
            out[m_range.start : m_range.stop, n_range.start : n_range.stop] = partial
        return GemmResult(output=out, plan=plan)
