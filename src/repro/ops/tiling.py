"""Operation tiling (paper Section II-C).

When an operand is larger than the mesh, the GEMM is decomposed into tiles
(Eq. 2-4 of the paper): the output is covered by ``(M/Tm) x (N/Tn)`` output
tiles, each accumulated over ``K/Tk`` reduction tiles. The *tiling effect*
on fault patterns (RQ3) follows directly from this decomposition: every
output tile is computed on the same physical mesh, so a faulty MAC re-appears
at the same local coordinates in every output tile, while reduction tiles
accumulate into the same coordinates and add no new spatial structure.

:class:`TilingPlan` is the pure description of a decomposition; it is what
the fault-pattern predictor (:mod:`repro.core.predictor`) and the classifier
consume to reason about multi-tile patterns without re-running anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.systolic.array import MeshConfig
from repro.systolic.dataflow import Dataflow

__all__ = ["TileRange", "TilingPlan", "plan_gemm_tiling", "split_ranges"]


@dataclass(frozen=True)
class TileRange:
    """A half-open index range ``[start, stop)`` along one dimension."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid tile range [{self.start}, {self.stop})")


def split_ranges(extent: int, tile: int) -> tuple[TileRange, ...]:
    """Split ``[0, extent)`` into consecutive tiles of at most ``tile``."""
    if extent <= 0:
        raise ValueError(f"extent must be positive, got {extent}")
    if tile <= 0:
        raise ValueError(f"tile size must be positive, got {tile}")
    return tuple(
        TileRange(index=i, start=start, stop=min(start + tile, extent))
        for i, start in enumerate(range(0, extent, tile))
    )


@dataclass(frozen=True)
class TilingPlan:
    """The decomposition of an ``(M, K) x (K, N)`` GEMM into mesh tiles.

    Attributes
    ----------
    m, k, n:
        GEMM dimensions.
    tile_m, tile_k, tile_n:
        Tile sizes along each dimension.
    dataflow:
        The dataflow this plan was built for (constrains which dimensions
        must fit the mesh).
    """

    m: int
    k: int
    n: int
    tile_m: int
    tile_k: int
    tile_n: int
    dataflow: Dataflow

    # ------------------------------------------------------------------
    # Tile grids
    # ------------------------------------------------------------------
    @property
    def m_tiles(self) -> tuple[TileRange, ...]:
        return split_ranges(self.m, self.tile_m)

    @property
    def k_tiles(self) -> tuple[TileRange, ...]:
        return split_ranges(self.k, self.tile_k)

    @property
    def n_tiles(self) -> tuple[TileRange, ...]:
        return split_ranges(self.n, self.tile_n)

    @property
    def num_output_tiles(self) -> int:
        """Tiles covering the output matrix (the paper's coloured tiles)."""
        return len(self.m_tiles) * len(self.n_tiles)

    @property
    def num_tile_matmuls(self) -> int:
        """Total mesh-level matmuls (output tiles x reduction tiles)."""
        return self.num_output_tiles * len(self.k_tiles)

    @property
    def is_tiled(self) -> bool:
        """Whether any *output* dimension needs more than one tile.

        Reduction-only tiling accumulates into the same output coordinates
        and therefore produces no multi-tile spatial pattern (Section IV-A3).
        """
        return len(self.m_tiles) > 1 or len(self.n_tiles) > 1

    def output_tiles(self) -> Iterator[tuple[TileRange, TileRange]]:
        """Iterate output tiles in row-major order."""
        for m_range in self.m_tiles:
            for n_range in self.n_tiles:
                yield m_range, n_range

    # ------------------------------------------------------------------
    # Fault geometry helpers (used by the predictor)
    # ------------------------------------------------------------------
    def output_rows_for_mesh_row(self, mesh_row: int) -> tuple[int, ...]:
        """Global output rows mapped onto mesh row ``mesh_row`` (OS only)."""
        rows = []
        for m_range in self.m_tiles:
            row = m_range.start + mesh_row
            if row < m_range.stop:
                rows.append(row)
        return tuple(rows)

    def output_cols_for_mesh_col(self, mesh_col: int) -> tuple[int, ...]:
        """Global output columns mapped onto mesh column ``mesh_col``."""
        cols = []
        for n_range in self.n_tiles:
            col = n_range.start + mesh_col
            if col < n_range.stop:
                cols.append(col)
        return tuple(cols)

    def output_rows_for_mesh_col(self, mesh_col: int) -> tuple[int, ...]:
        """Global output rows mapped onto mesh column ``mesh_col`` (IS only).

        Under the input-stationary dataflow the output-row dimension is
        laid across mesh *columns* (the transposed-WS execution), so a
        fault in mesh column ``c`` touches output rows ``c``, ``c +
        tile_m``, ... wherever the (possibly ragged) row tiles extend that
        far.
        """
        rows = []
        for m_range in self.m_tiles:
            row = m_range.start + mesh_col
            if row < m_range.stop:
                rows.append(row)
        return tuple(rows)


def plan_gemm_tiling(
    m: int,
    k: int,
    n: int,
    config: MeshConfig,
    dataflow: Dataflow,
    tile_m: int | None = None,
    tile_k: int | None = None,
    tile_n: int | None = None,
) -> TilingPlan:
    """Build the default (mesh-sized, square) tiling plan of the paper.

    Every dimension defaults to the mesh extent, matching the paper's
    example (Section II-C) where a 4x4 GEMM on a 2x2 array splits into 2x2
    tiles along all three dimensions.

    Raises
    ------
    ValueError
        If an explicit tile size violates the dataflow's mesh constraints
        (OS: ``tile_m <= rows`` and ``tile_n <= cols``; WS: ``tile_k <=
        rows`` and ``tile_n <= cols``).
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError(f"GEMM dimensions must be positive, got {m}x{k}x{n}")
    # Default tile sizes follow the dataflow's physical mapping: the M
    # dimension lies on mesh rows under OS/WS but on mesh columns under IS.
    default_tile_m = config.cols if dataflow is Dataflow.INPUT_STATIONARY else config.rows
    tile_m = tile_m if tile_m is not None else min(m, default_tile_m)
    tile_k = tile_k if tile_k is not None else min(k, config.rows)
    tile_n = tile_n if tile_n is not None else min(n, config.cols)
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        if tile_m > config.rows:
            raise ValueError(
                f"OS requires tile_m <= mesh rows ({config.rows}), got {tile_m}"
            )
        if tile_n > config.cols:
            raise ValueError(
                f"OS requires tile_n <= mesh cols ({config.cols}), got {tile_n}"
            )
    elif dataflow is Dataflow.WEIGHT_STATIONARY:
        if tile_k > config.rows:
            raise ValueError(
                f"WS requires tile_k <= mesh rows ({config.rows}), got {tile_k}"
            )
        if tile_n > config.cols:
            raise ValueError(
                f"WS requires tile_n <= mesh cols ({config.cols}), got {tile_n}"
            )
    elif dataflow is Dataflow.INPUT_STATIONARY:
        if tile_k > config.rows:
            raise ValueError(
                f"IS requires tile_k <= mesh rows ({config.rows}), got {tile_k}"
            )
        if tile_m > config.cols:
            raise ValueError(
                f"IS requires tile_m <= mesh cols ({config.cols}), got {tile_m}"
            )
    else:
        raise ValueError(f"unsupported dataflow: {dataflow!r}")
    return TilingPlan(
        m=m,
        k=k,
        n=n,
        tile_m=tile_m,
        tile_k=tile_k,
        tile_n=tile_n,
        dataflow=dataflow,
    )
