"""Tensor-operator lowering and execution on the systolic substrate.

Implements the paper's Sections II-B and II-C: im2col convolution lowering,
operation tiling, and the tiled GEMM executor, plus golden numpy references.

Public API
----------
:class:`~repro.ops.gemm.TiledGemm`
    Arbitrary-size GEMM on a fixed-size mesh.
:class:`~repro.ops.conv.SystolicConv2d`
    Convolution via im2col + tiled GEMM.
:class:`~repro.ops.tiling.TilingPlan`
    Pure description of a GEMM decomposition.
:func:`~repro.ops.reference.reference_gemm` /
:func:`~repro.ops.reference.reference_conv2d`
    Golden oracles with hardware wrap semantics.
"""

from repro.ops.conv import ConvResult, SystolicConv2d
from repro.ops.gemm import GemmResult, TiledGemm
from repro.ops.im2col import ConvGeometry, col2im_output, im2col, kernel_to_matrix
from repro.ops.reference import reference_conv2d, reference_gemm, uniform_ones
from repro.ops.tiling import TileRange, TilingPlan, plan_gemm_tiling, split_ranges

__all__ = [
    "TiledGemm",
    "GemmResult",
    "SystolicConv2d",
    "ConvResult",
    "ConvGeometry",
    "im2col",
    "kernel_to_matrix",
    "col2im_output",
    "reference_gemm",
    "reference_conv2d",
    "uniform_ones",
    "TilingPlan",
    "TileRange",
    "plan_gemm_tiling",
    "split_ranges",
]
