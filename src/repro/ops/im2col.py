"""Convolution lowering to GEMM via im2col (paper Section II-B).

The paper follows the cuDNN scheme:

* the input tensor ``(N, C, H, W)`` is reshaped into a 2-D patch matrix of
  dimensions ``(N*P*Q, C*R*S)`` — one row per output spatial position, one
  column per (input-channel, kernel-row, kernel-col) triple;
* the convolution kernel ``(K, C, R, S)`` is reshaped into a 2-D matrix of
  dimensions ``(C*R*S, K)`` — one column per output channel.

The product is the ``(N*P*Q, K)`` output matrix whose column ``k`` is
output channel ``k``; this column-to-channel mapping is why a stuck-at
fault that corrupts one physical mesh column manifests as a corrupted
*output channel* (Section IV-A2).

Index orders are fixed and documented here because the fault-pattern
predictor must invert them: row index = ``((n * P) + p) * Q + q``; column
index = ``((c * R) + r) * S + s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConvGeometry", "im2col", "kernel_to_matrix", "col2im_output"]


@dataclass(frozen=True)
class ConvGeometry:
    """Shape bookkeeping for one convolution (paper's N/C/H/W/K/R/S/P/Q).

    Attributes follow the paper's notation exactly: batch ``n``, input
    channels ``c``, input height/width ``h``/``w``, output channels ``k``,
    kernel rows/cols ``r``/``s``, output height/width ``p``/``q``.
    """

    n: int
    c: int
    h: int
    w: int
    k: int
    r: int
    s: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for name in ("n", "c", "h", "w", "k", "r", "s", "stride"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        if self.p <= 0 or self.q <= 0:
            raise ValueError(
                f"kernel {self.r}x{self.s} does not fit input "
                f"{self.h}x{self.w} with padding {self.padding}"
            )

    @property
    def p(self) -> int:
        """Output height."""
        return (self.h + 2 * self.padding - self.r) // self.stride + 1

    @property
    def q(self) -> int:
        """Output width."""
        return (self.w + 2 * self.padding - self.s) // self.stride + 1

    @property
    def gemm_m(self) -> int:
        """Rows of the lowered GEMM: ``N * P * Q``."""
        return self.n * self.p * self.q

    @property
    def gemm_k(self) -> int:
        """Reduction dimension of the lowered GEMM: ``C * R * S``."""
        return self.c * self.r * self.s

    @property
    def gemm_n(self) -> int:
        """Columns of the lowered GEMM: ``K`` (one per output channel)."""
        return self.k

    @classmethod
    def from_tensors(
        cls,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> "ConvGeometry":
        """Derive the geometry from an NCHW input and a KCRS kernel."""
        if inputs.ndim != 4:
            raise ValueError(f"input must be NCHW, got shape {inputs.shape}")
        if weights.ndim != 4:
            raise ValueError(f"kernel must be KCRS, got shape {weights.shape}")
        n, c, h, w = inputs.shape
        k, kc, r, s = weights.shape
        if kc != c:
            raise ValueError(
                f"kernel expects {kc} input channels, input has {c}"
            )
        return cls(n=n, c=c, h=h, w=w, k=k, r=r, s=s, stride=stride, padding=padding)


def im2col(inputs: np.ndarray, geometry: ConvGeometry) -> np.ndarray:
    """Lower an NCHW input tensor to the ``(N*P*Q, C*R*S)`` patch matrix."""
    inputs = np.asarray(inputs)
    g = geometry
    if inputs.shape != (g.n, g.c, g.h, g.w):
        raise ValueError(
            f"input shape {inputs.shape} does not match geometry "
            f"({g.n}, {g.c}, {g.h}, {g.w})"
        )
    if g.padding:
        inputs = np.pad(
            inputs,
            ((0, 0), (0, 0), (g.padding, g.padding), (g.padding, g.padding)),
            mode="constant",
        )
    inputs = np.ascontiguousarray(inputs, dtype=np.int64)
    # Vectorised window gather: index arrays of shape (P, R) and (Q, S)
    # broadcast to (P, Q, R, S), producing (N, C, P, Q, R, S) in one fancy
    # index. Equivalent to the per-window loop, benchmarked ~100x faster
    # on the paper's 112x112 inputs.
    row_index = (
        np.arange(g.p, dtype=np.int64)[:, None] * g.stride
        + np.arange(g.r, dtype=np.int64)[None, :]
    )  # (P, R)
    col_index = (
        np.arange(g.q, dtype=np.int64)[:, None] * g.stride
        + np.arange(g.s, dtype=np.int64)[None, :]
    )  # (Q, S)
    windows = inputs[
        :, :, row_index[:, None, :, None], col_index[None, :, None, :]
    ]  # (N, C, P, Q, R, S)
    # Row layout (n*P + p)*Q + q; column layout (c*R + r)*S + s.
    return (
        windows.transpose(0, 2, 3, 1, 4, 5)
        .reshape(g.gemm_m, g.gemm_k)
        .copy()
    )


def kernel_to_matrix(weights: np.ndarray, geometry: ConvGeometry) -> np.ndarray:
    """Lower a KCRS kernel to the ``(C*R*S, K)`` weight matrix."""
    weights = np.asarray(weights)
    g = geometry
    if weights.shape != (g.k, g.c, g.r, g.s):
        raise ValueError(
            f"kernel shape {weights.shape} does not match geometry "
            f"({g.k}, {g.c}, {g.r}, {g.s})"
        )
    return weights.reshape(g.k, g.gemm_k).T.astype(np.int64)


def col2im_output(matrix: np.ndarray, geometry: ConvGeometry) -> np.ndarray:
    """Reshape the ``(N*P*Q, K)`` GEMM output back to ``(N, K, P, Q)``."""
    matrix = np.asarray(matrix)
    g = geometry
    if matrix.shape != (g.gemm_m, g.k):
        raise ValueError(
            f"GEMM output shape {matrix.shape} does not match geometry "
            f"({g.gemm_m}, {g.k})"
        )
    return (
        matrix.reshape(g.n, g.p, g.q, g.k).transpose(0, 3, 1, 2).copy()
    )
