"""Command-line interface to the FI framework.

Four subcommands mirror the workflows of the paper:

``repro-fi campaign``
    Run an SSF campaign (exhaustive or sampled) for a GEMM or convolution
    workload and print the summary; optionally dump the raw results or an
    LLTFI-style fault dictionary as JSON. ``--jobs/-j`` shards the site
    sweep over worker processes, ``--checkpoint``/``--resume`` stream
    completed experiments to an append-only JSONL file and pick an
    interrupted campaign back up (see ``docs/parallel.md``).
``repro-fi worker``
    Join a fabric coordinator as an elastic worker agent
    (``--connect HOST:PORT``) and execute shards it leases out; pairs
    with ``repro-fi campaign --fabric-listen HOST:PORT`` on the
    coordinator side (see ``docs/distributed.md``).
``repro-fi serve``
    Start the campaign service: an HTTP JSON API to submit campaign
    specs as queued jobs, stream live progress over SSE, fetch
    bit-identical result artefacts, and scrape Prometheus metrics, with
    a crash-safe job registry (``--resume``) behind it (see
    ``docs/service.md``).
``repro-fi predict``
    Analytically predict the fault pattern of one site for a GEMM shape —
    no simulation — and render it.
``repro-fi atlas``
    Print one rendered example of every pattern class.
``repro-fi statespace``
    Print the FI state-space arithmetic of Section III-A.
``repro-fi lint``
    Run the repo's static analysis battery (:mod:`repro.checks`) over
    source paths: per-file invariant rules plus the whole-program
    determinism, bit-width interval, and dataflow/contract passes.
    Incremental by default (``--no-cache`` disables), with ``--jobs/-j``
    to fan the per-file battery over worker processes, ``--format
    sarif`` for code-scanning upload, ``--baseline`` /
    ``--fail-on new`` for staged adoption against a committed baseline,
    and ``--graph-dump`` to inspect the project call graph. Non-zero
    exit on findings.

Examples
--------
::

    repro-fi campaign --op gemm --size 16 --dataflow WS
    repro-fi campaign --op conv --size 16 --kernel 3,3,3,8 --dict faults.json
    repro-fi campaign --size 16 -j 4 --checkpoint campaign.jsonl
    repro-fi campaign --size 16 -j 4 --resume campaign.jsonl
    repro-fi campaign --size 16 -j 4 --trace trace.json --metrics metrics.prom --progress
    repro-fi campaign --size 16 --fabric-listen 0.0.0.0:7311 --fabric-workers 4
    repro-fi worker --connect coordinator-host:7311 --jobs 4
    repro-fi serve --listen 127.0.0.1:8100 --state-dir .repro-service
    repro-fi serve --listen 127.0.0.1:8100 --state-dir .repro-service --resume
    repro-fi predict --m 112 --k 112 --n 112 --dataflow WS --row 5 --col 9
    repro-fi lint src/repro --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import render_gemm_pattern, summary_table
from repro.core import (
    Campaign,
    ConvWorkload,
    FaultSpec,
    GemmWorkload,
    diagonal_sites,
    predict_pattern,
)
from repro.core.executor import ParallelExecutor, SerialExecutor
from repro.core.reports import campaign_summary, format_table
from repro.core.resilience import CampaignExecutionError, CampaignInterrupted
from repro.core.sampling import StateSpace, random_sites
from repro.core.serialize import save_campaign, save_fault_dictionary, save_metrics
from repro.faults.sites import MAC_SIGNALS, PAPER_FAULT_SIGNAL, FaultSite
from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    Observability,
    ProgressReporter,
    TraceRecorder,
    write_chrome_trace,
)
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig

__all__ = ["main", "build_parser"]

_DATAFLOWS = {d.value: d for d in Dataflow}


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--jobs``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for flags that must be >= 0 (e.g. ``--max-retries``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type for flags that must be > 0 (e.g. ``--shard-timeout``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _host_port(text: str) -> tuple[str, int]:
    """argparse type for ``HOST:PORT`` endpoints (IPv6 hosts allowed)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer port, got {port_text!r}"
        )
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(f"port out of range: {port}")
    return host.strip("[]"), port


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=_positive_int,
        default=1,
        help="worker processes for the site sweep (1 = serial reference)",
    )


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Failure-policy knobs of the parallel executor (docs/resilience.md)."""
    parser.add_argument(
        "--shard-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per shard attempt; a hung worker is "
        "killed, the pool reconstituted, and the shard retried "
        "(default: no deadline)",
    )
    parser.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retries per shard before bisection/quarantine kicks in "
        "(default: 2, with deterministic exponential backoff)",
    )
    parser.add_argument(
        "--on-error",
        choices=("abort", "quarantine"),
        default="quarantine",
        help="once retries are exhausted: 'abort' raises a typed error, "
        "'quarantine' (default) isolates the poison site into the "
        "checkpoint and completes the rest of the campaign",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability knobs (docs/observability.md)."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record hierarchical spans (parent and workers) and write "
        "them as Chrome trace-event JSON, loadable in Perfetto",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="record run metrics (sites/s, cache hits, retries, shard "
        "latency) and write them here: Prometheus text exposition, or a "
        "JSON snapshot when PATH ends in .json",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line on stderr "
        "(done/total, sites/s, ETA, retry/quarantine counts)",
    )


def _build_obs(args: argparse.Namespace) -> Observability | None:
    """The observability bundle the flags ask for, or ``None`` for none.

    Any flag arms the metrics registry too — the telemetry summary in the
    campaign output is metrics-derived, and it should appear whenever the
    user opted into observation.
    """
    if not (args.trace or args.metrics or args.progress):
        return None
    return Observability(
        recorder=TraceRecorder() if args.trace else NULL_RECORDER,
        metrics=MetricsRegistry(),
        progress=ProgressReporter() if args.progress else None,
    )


def _write_obs_artifacts(
    args: argparse.Namespace, obs: Observability | None
) -> None:
    """Write the trace / metrics files the flags requested."""
    if obs is None:
        return
    if args.trace:
        path = write_chrome_trace(obs.recorder.events(), args.trace)
        print(f"trace written to {path}")
    if args.metrics:
        if args.metrics.endswith(".json"):
            path = save_metrics(obs.metrics, args.metrics)
        else:
            from pathlib import Path

            path = Path(args.metrics)
            path.write_text(obs.metrics.render_prometheus())
        print(f"metrics written to {path}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro-fi",
        description="Stuck-at fault injection for systolic arrays "
        "(DSN 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run an SSF campaign")
    campaign.add_argument("--rows", type=int, default=16, help="mesh rows")
    campaign.add_argument("--cols", type=int, default=16, help="mesh cols")
    campaign.add_argument(
        "--op", choices=("gemm", "conv"), default="gemm", help="operation type"
    )
    campaign.add_argument(
        "--size", type=int, default=16, help="square operand / input size"
    )
    campaign.add_argument(
        "--kernel",
        default="3,3,3,3",
        help="conv kernel as R,S,C,K (paper Table I notation)",
    )
    campaign.add_argument(
        "--dataflow", choices=sorted(_DATAFLOWS), default="WS"
    )
    campaign.add_argument(
        "--engine",
        choices=("functional", "cycle", "analytic"),
        default="functional",
        help="execution tier: functional simulator (default), "
        "cycle-accurate reference, or closed-form analytic deltas "
        "(bit-identical, batched)",
    )
    campaign.add_argument("--bit", type=int, default=20, help="stuck bit")
    campaign.add_argument(
        "--stuck", type=int, choices=(0, 1), default=1, help="stuck value"
    )
    campaign.add_argument(
        "--signal",
        default=PAPER_FAULT_SIGNAL,
        choices=MAC_SIGNALS,
        help=f"datapath signal to inject into (paper: {PAPER_FAULT_SIGNAL})",
    )
    campaign.add_argument(
        "--sites",
        choices=("all", "diagonal", "random"),
        default="all",
        help="site-selection strategy",
    )
    campaign.add_argument(
        "--num-random", type=int, default=16, help="sites when --sites random"
    )
    campaign.add_argument("--json", help="write full results JSON here")
    campaign.add_argument(
        "--dict", dest="dictionary", help="write fault dictionary JSON here"
    )
    _add_jobs_flag(campaign)
    campaign.add_argument(
        "--checkpoint",
        help="append completed experiments to this JSONL stream",
    )
    campaign.add_argument(
        "--resume",
        help="resume an interrupted campaign from this JSONL checkpoint "
        "(completed sites are not re-executed; new ones are appended)",
    )
    _add_resilience_flags(campaign)
    _add_obs_flags(campaign)
    campaign.add_argument(
        "--fabric-listen",
        type=_host_port,
        default=None,
        metavar="HOST:PORT",
        help="run the campaign over the distributed fabric: listen here "
        "for 'repro-fi worker' agents instead of forking a local pool "
        "(port 0 picks a free port; see docs/distributed.md)",
    )
    campaign.add_argument(
        "--fabric-workers",
        type=_positive_int,
        default=2,
        metavar="N",
        help="anticipated fleet size; sizes shard granularity exactly "
        "as --jobs does for the local pool (default: 2)",
    )
    campaign.add_argument(
        "--lease-seconds",
        type=_positive_float,
        default=10.0,
        metavar="SECONDS",
        help="shard lease duration; a worker silent this long forfeits "
        "its shards back to the queue (default: 10)",
    )
    campaign.add_argument(
        "--heartbeat-interval",
        type=_positive_float,
        default=2.0,
        metavar="SECONDS",
        help="worker lease-renewal cadence; must be shorter than "
        "--lease-seconds (default: 2)",
    )
    campaign.add_argument(
        "--join-timeout",
        type=_positive_float,
        default=60.0,
        metavar="SECONDS",
        help="how long the coordinator waits for the first worker "
        "before giving up (default: 60)",
    )

    worker = sub.add_parser(
        "worker",
        help="join a fabric coordinator and execute leased shards",
    )
    worker.add_argument(
        "--connect",
        type=_host_port,
        required=True,
        metavar="HOST:PORT",
        help="coordinator endpoint to join "
        "(the campaign side's --fabric-listen address)",
    )
    worker.add_argument(
        "--jobs",
        "-j",
        type=_positive_int,
        default=1,
        help="local worker processes; also the number of shards leased "
        "to this agent at once (default: 1)",
    )
    worker.add_argument(
        "--reconnect-attempts",
        type=_nonnegative_int,
        default=10,
        metavar="N",
        help="consecutive failed connection attempts before the agent "
        "gives up (default: 10)",
    )
    worker.add_argument(
        "--reconnect-delay",
        type=_positive_float,
        default=1.0,
        metavar="SECONDS",
        help="pause between reconnection attempts (default: 1)",
    )
    worker.add_argument(
        "--stay",
        action="store_true",
        help="outlive the campaign: after a drain, keep reconnecting "
        "and serve the next coordinator on the same endpoint",
    )

    serve = sub.add_parser(
        "serve",
        help="serve the campaign HTTP API (jobs, SSE progress, metrics; "
        "see docs/service.md)",
    )
    serve.add_argument(
        "--listen",
        type=_host_port,
        default=("127.0.0.1", 8100),
        metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free port; "
        "default: 127.0.0.1:8100)",
    )
    serve.add_argument(
        "--state-dir",
        default=".repro-service",
        metavar="DIR",
        help="job registry, per-job checkpoints, and result artefacts "
        "live here (default: .repro-service)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore queued/running jobs from the state dir's registry "
        "before listening (the crash-recovery path)",
    )
    serve.add_argument(
        "--max-queued",
        type=_positive_int,
        default=16,
        metavar="N",
        help="bounded job-queue capacity; past it POST /campaigns "
        "returns 429 (default: 16)",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=_positive_int,
        default=1024 * 1024,
        metavar="BYTES",
        help="request-body size cap (default: 1 MiB)",
    )
    serve.add_argument(
        "--io-timeout",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help="deadline for every peer-bound read/write (default: 30)",
    )
    serve.add_argument(
        "--sse-interval",
        type=_positive_float,
        default=0.25,
        metavar="SECONDS",
        help="seconds between SSE progress frames (default: 0.25)",
    )

    predict = sub.add_parser(
        "predict", help="analytically predict one fault pattern"
    )
    predict.add_argument("--rows", type=int, default=16)
    predict.add_argument("--cols", type=int, default=16)
    predict.add_argument("--m", type=int, required=True)
    predict.add_argument("--k", type=int, required=True)
    predict.add_argument("--n", type=int, required=True)
    predict.add_argument("--dataflow", choices=sorted(_DATAFLOWS), default="WS")
    predict.add_argument("--row", type=int, required=True, help="faulty MAC row")
    predict.add_argument("--col", type=int, required=True, help="faulty MAC col")

    sub.add_parser("atlas", help="render one example of every pattern class")
    sub.add_parser("statespace", help="print the Section III-A arithmetic")

    study = sub.add_parser(
        "study", help="run the paper's full Table I grid and report"
    )
    study.add_argument("--rows", type=int, default=16)
    study.add_argument("--cols", type=int, default=16)
    study.add_argument(
        "--fast",
        action="store_true",
        help="diagonal site sweep and no 112x112 configs",
    )
    study.add_argument(
        "--engine",
        choices=("functional", "cycle", "analytic"),
        default="functional",
        help="execution tier for every campaign of the grid",
    )
    study.add_argument("--markdown", help="write the report as markdown here")
    _add_jobs_flag(study)
    _add_resilience_flags(study)
    _add_obs_flags(study)

    zoo = sub.add_parser(
        "zoo", help="per-layer vulnerability of a known network's shapes"
    )
    zoo.add_argument(
        "network",
        choices=("lenet5", "alexnet", "resnet18"),
        help="network whose layer shapes to characterise",
    )
    zoo.add_argument("--rows", type=int, default=16)
    zoo.add_argument("--cols", type=int, default=16)
    zoo.add_argument(
        "--dataflow", choices=sorted(_DATAFLOWS), default="WS"
    )

    lint = sub.add_parser(
        "lint",
        help="run the static analysis battery (per-file rules + "
        "whole-program passes) over source paths",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif: SARIF 2.1.0 for code scanning)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print each rule's id, severity, scope, and description, "
        "then exit",
    )
    lint.add_argument(
        "--baseline",
        help="subtract findings recorded in this baseline file; "
        "only new findings fail the run",
    )
    lint.add_argument(
        "--fail-on",
        choices=("any", "new"),
        default="any",
        help="'any' (default) fails on every finding; 'new' fails only "
        "on findings absent from the committed baseline "
        "(lint-baseline.json unless --baseline names another file)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    lint.add_argument(
        "--cache-path",
        default=None,
        help="incremental cache location "
        "(default: .repro-lint-cache.json in the working directory)",
    )
    lint.add_argument(
        "--graph-dump",
        metavar="PATH",
        help="write the project import/symbol/call graph as JSON to PATH "
        "('-' for stdout) and exit",
    )
    lint.add_argument(
        "--jobs",
        "-j",
        type=_positive_int,
        default=1,
        help="worker processes for the per-file rule battery "
        "(whole-program passes always run in-parent; 1 = serial)",
    )
    lint.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only the named rule ids (comma-separated); subset runs "
        "bypass the incremental cache",
    )
    lint.add_argument(
        "--skip",
        metavar="RULE[,RULE...]",
        help="run everything except the named rule ids (comma-separated); "
        "subset runs bypass the incremental cache",
    )
    return parser


def _cmd_campaign(args: argparse.Namespace) -> int:
    mesh = MeshConfig(rows=args.rows, cols=args.cols)
    dataflow = _DATAFLOWS[args.dataflow]
    if args.op == "gemm":
        workload = GemmWorkload.square(args.size, dataflow)
    else:
        try:
            r, s, c, k = (int(part) for part in args.kernel.split(","))
        except ValueError:
            print(f"error: --kernel must be R,S,C,K, got {args.kernel!r}",
                  file=sys.stderr)
            return 2
        workload = ConvWorkload.paper_kernel(
            args.size, (r, s, c, k), dataflow=dataflow
        )
    if args.sites == "all":
        sites = None
    elif args.sites == "diagonal":
        sites = diagonal_sites(mesh)
    else:
        sites = random_sites(mesh, args.num_random)
    spec = FaultSpec(signal=args.signal, bit=args.bit, stuck_value=args.stuck)
    obs = _build_obs(args)
    executor = None
    if args.fabric_listen is not None:
        if args.jobs > 1:
            print(
                "error: --fabric-listen and --jobs > 1 are mutually "
                "exclusive (the fleet's workers bring their own --jobs)",
                file=sys.stderr,
            )
            return 2
        from repro.core.fabric import DistributedExecutor

        host, port = args.fabric_listen

        def announce(bound_host: str, bound_port: int) -> None:
            print(
                f"fabric listening on {bound_host}:{bound_port}; join with "
                f"'repro-fi worker --connect {bound_host}:{bound_port}'",
                file=sys.stderr,
            )

        executor = DistributedExecutor(
            host,
            port,
            expected_workers=args.fabric_workers,
            lease_seconds=args.lease_seconds,
            heartbeat_interval=args.heartbeat_interval,
            join_timeout=args.join_timeout,
            announce=announce,
            checkpoint=args.checkpoint,
            resume=args.resume,
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            on_error=args.on_error,
            obs=obs,
        )
    elif args.jobs > 1 or args.checkpoint or args.resume:
        executor = ParallelExecutor(
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            resume=args.resume,
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            on_error=args.on_error,
            obs=obs,
        )
    elif obs is not None:
        executor = SerialExecutor(obs=obs)
    try:
        result = Campaign(
            mesh, workload, fault_spec=spec, engine=args.engine, sites=sites
        ).run(executor=executor)
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.checkpoint is not None:
            print(
                f"rerun with --resume {exc.checkpoint} to continue",
                file=sys.stderr,
            )
        return 128 + exc.signum
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(campaign_summary(result))
    _write_obs_artifacts(args, obs)
    if args.json:
        path = save_campaign(result, args.json)
        print(f"\nresults written to {path}")
    if args.dictionary:
        path = save_fault_dictionary(result, args.dictionary)
        print(f"fault dictionary written to {path}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.fabric import WorkerAgent

    host, port = args.connect
    agent = WorkerAgent(
        host,
        port,
        jobs=args.jobs,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_delay=args.reconnect_delay,
        stay=args.stay,
    )
    return agent.run()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CampaignService

    host, port = args.listen

    def announce(bound_host: str, bound_port: int) -> None:
        print(
            f"service listening on http://{bound_host}:{bound_port} "
            f"(state: {args.state_dir})",
            flush=True,
        )

    service = CampaignService(
        host,
        port,
        args.state_dir,
        resume=args.resume,
        max_queued=args.max_queued,
        max_body=args.max_body_bytes,
        io_timeout=args.io_timeout,
        sse_interval=args.sse_interval,
        announce=announce,
    )
    return service.run()


def _cmd_predict(args: argparse.Namespace) -> int:
    mesh = MeshConfig(rows=args.rows, cols=args.cols)
    dataflow = _DATAFLOWS[args.dataflow]
    plan = plan_gemm_tiling(args.m, args.k, args.n, mesh, dataflow)
    site = FaultSite(row=args.row, col=args.col)
    predicted = predict_pattern(site, plan)
    print(f"fault          : {site}")
    print(f"GEMM           : {args.m}x{args.k}x{args.n}, {dataflow}")
    print(f"pattern class  : {predicted.pattern_class}")
    print(f"corrupted cells: {predicted.num_cells}")
    if args.m <= 64 and args.n <= 64:
        from repro.analysis.visualize import render_mask

        print(render_mask(predicted.support))
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    mesh = MeshConfig(rows=4, cols=4)
    cases = [
        ("single-element", GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY)),
        ("single-element multi-tile",
         GemmWorkload.square(8, Dataflow.OUTPUT_STATIONARY)),
        ("single-column", GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)),
        ("single-column multi-tile",
         GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)),
        ("single-row", GemmWorkload.square(4, Dataflow.INPUT_STATIONARY)),
        ("single-row multi-tile",
         GemmWorkload.square(8, Dataflow.INPUT_STATIONARY)),
    ]
    for title, workload in cases:
        result = Campaign(mesh, workload, sites=[(1, 2)]).run()
        experiment = result.experiments[0]
        print(f"--- {title} ({workload.describe()}) ---")
        print(render_gemm_pattern(experiment.pattern))
        print()
    return 0


def _cmd_statespace(args: argparse.Namespace) -> int:
    space = StateSpace(mesh=MeshConfig.paper())
    rows = [
        ("MAC units", space.mesh.num_macs),
        ("bits per MAC", space.sites_per_mac),
        ("fault sites", space.num_fault_sites),
        ("total configurations", space.total_configurations),
    ]
    print(format_table(("component", "count"), rows))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.study import run_paper_study

    mesh = MeshConfig(rows=args.rows, cols=args.cols)
    sites = diagonal_sites(mesh) if args.fast else None
    obs = _build_obs(args)
    report = run_paper_study(
        mesh=mesh,
        sites=sites,
        include_large=not args.fast,
        engine=args.engine,
        jobs=args.jobs,
        shard_timeout=args.shard_timeout,
        max_retries=args.max_retries,
        on_error=args.on_error,
        obs=obs,
    )
    print(report.to_text())
    _write_obs_artifacts(args, obs)
    if args.markdown:
        Path(args.markdown).write_text(report.to_markdown())
        print(f"\nmarkdown report written to {args.markdown}")
    return 0 if report.all_match_theory else 1


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.core.vulnerability import analyze_operation
    from repro.nn.zoo import NETWORKS

    mesh = MeshConfig(rows=args.rows, cols=args.cols)
    dataflow = _DATAFLOWS[args.dataflow]
    rows = []
    for layer in NETWORKS[args.network]:
        plan = layer.plan(mesh, dataflow)
        profile = analyze_operation(plan, mesh, geometry=layer.geometry())
        m, k, n = layer.gemm_shape()
        rows.append(
            (
                layer.name,
                f"{m}x{k}x{n}",
                f"{100 * profile.architectural_sdc_rate:.0f}%",
                str(profile.dominant_class),
                f"{profile.mean_blast_radius:.0f}",
                f"{100 * profile.mean_output_fraction:.1f}%",
            )
        )
    print(
        f"{args.network} on {mesh.rows}x{mesh.cols} mesh, {dataflow} dataflow"
    )
    print(
        format_table(
            (
                "layer",
                "lowered GEMM",
                "arch. SDC",
                "pattern class",
                "blast radius",
                "of output",
            ),
            rows,
        )
    )
    return 0


def _rule_scope_label(rule) -> str:
    """The scope column of ``--list-rules``."""
    from repro.checks.engine import ProjectRule

    if isinstance(rule, ProjectRule):
        return "whole-program"
    if rule.scopes is None:
        return "all modules"
    return ", ".join(rule.scopes)


def _lint_subset(paths, args: argparse.Namespace):
    """Run a ``--select``/``--skip`` rule subset (cache bypassed).

    Returns the sorted findings, or None after printing an unknown-id
    error (the message carries the sorted known-id list).
    """
    from repro.checks.engine import (
        run_checks,
        run_project_checks,
        select_rules,
    )

    def split(raw: str | None) -> list[str]:
        if not raw:
            return []
        return [part.strip() for part in raw.split(",") if part.strip()]

    try:
        per_file, project = select_rules(
            select=split(args.select) or None, skip=split(args.skip) or None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    findings = run_checks(paths, rules=per_file)
    if project:
        findings.extend(run_project_checks(paths, rules=project))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.checks import render_json, render_text
    from repro.checks.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.checks.cache import DEFAULT_CACHE_PATH, lint_paths
    from repro.checks.engine import rule_catalog
    from repro.checks.sarif import render_sarif

    if args.list_rules:
        rows = sorted(
            (rule.id, str(rule.severity), _rule_scope_label(rule),
             rule.description)
            for rule in rule_catalog()
        )
        print(format_table(("rule", "severity", "scope", "description"), rows))
        return 0
    paths = list(args.paths)
    if not paths:
        default = Path("src") / "repro"
        if not default.is_dir():
            print(
                "error: no paths given and ./src/repro does not exist",
                file=sys.stderr,
            )
            return 2
        paths = [str(default)]
    if args.graph_dump:
        import json as _json

        from repro.checks.graph import ProjectGraph

        try:
            dump = _json.dumps(ProjectGraph.build(paths).to_dict(), indent=2)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.graph_dump == "-":
            print(dump)
        else:
            Path(args.graph_dump).write_text(dump + "\n")
            print(f"graph written to {args.graph_dump}")
        return 0
    baseline_path = args.baseline
    if args.fail_on == "new" and not baseline_path:
        baseline_path = "lint-baseline.json"
        if not args.update_baseline and not Path(baseline_path).is_file():
            print(
                "error: --fail-on new needs a committed baseline "
                "(./lint-baseline.json not found; pass --baseline PATH or "
                "create one with --update-baseline)",
                file=sys.stderr,
            )
            return 2
    cache_path = args.cache_path or DEFAULT_CACHE_PATH
    try:
        if args.select or args.skip:
            findings = _lint_subset(paths, args)
            if findings is None:
                return 2
        else:
            findings = lint_paths(
                paths,
                cache_path=cache_path,
                use_cache=not args.no_cache,
                jobs=args.jobs,
            )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        if not baseline_path:
            print(
                "error: --update-baseline requires --baseline PATH "
                "(or --fail-on new for ./lint-baseline.json)",
                file=sys.stderr,
            )
            return 2
        write_baseline(baseline_path, findings)
        print(f"baseline of {len(findings)} finding(s) written to "
              f"{baseline_path}")
        return 0
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, dangling = apply_baseline(findings, baseline)
        for (b_path, b_rule, _), count in sorted(dangling.items()):
            print(
                f"note: baseline entry no longer matches ({b_path} "
                f"[{b_rule}] x{count}); remove it from {baseline_path}",
                file=sys.stderr,
            )
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    heartbeat = getattr(args, "heartbeat_interval", None)
    lease = getattr(args, "lease_seconds", None)
    if heartbeat is not None and lease is not None and heartbeat >= lease:
        # A nonsensical pair used to surface as a raw executor traceback
        # (or, worse, instant lease expiry); reject it at parse time.
        parser.error(
            f"--heartbeat-interval ({heartbeat:g}s) must be shorter than "
            f"--lease-seconds ({lease:g}s); otherwise every lease expires "
            f"between renewals"
        )
    handlers = {
        "campaign": _cmd_campaign,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "predict": _cmd_predict,
        "atlas": _cmd_atlas,
        "statespace": _cmd_statespace,
        "study": _cmd_study,
        "zoo": _cmd_zoo,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
