"""On-the-fly fault-pattern derivation for application-level FI.

The paper's proposed use of its findings (Section IV Discussion):
application-level fault injectors "can leverage our insights about the
tiling effect and flattening of convolution operators to derive fault
patterns on the fly for various systolic array sizes and data mapping
schemes, as opposed to hard-coding the abstract fault pattern classes or
ignoring them."

This module is that derivation: given only (a) the tensor operation's
shape, (b) the target accelerator's mesh size and dataflow, and (c) a fault
site, it produces the exact corruption support an RTL-level stuck-at fault
would have — by reusing the tiling planner and analytical predictor that
the RTL-equivalent simulator validates.

Value perturbation of the covered elements follows the standard
application-level FI approximation (as in TensorFI/PyTorchFI): a bit of
each covered output element is forced/flipped. The support is exact; the
perturbed *values* are an approximation of what the datapath fault would
produce mid-accumulation, quantified by the appfi-vs-RTL ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import PatternClass
from repro.core.predictor import PredictedPattern, predict_pattern
from repro.faults.sites import FaultSite
from repro.ops.im2col import ConvGeometry
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic.array import MeshConfig
from repro.systolic.dataflow import Dataflow
from repro.systolic.datatypes import INT32, IntType, flip_bit_array, force_bit_array

__all__ = ["HardwareModel", "DerivedPattern"]


@dataclass(frozen=True)
class DerivedPattern:
    """A runtime-derived fault pattern ready to apply to a tensor.

    Wraps the analytical :class:`PredictedPattern` together with the
    operation context it was derived for.
    """

    prediction: PredictedPattern
    mesh: MeshConfig
    dataflow: Dataflow
    geometry: ConvGeometry | None = None

    @property
    def pattern_class(self) -> PatternClass:
        return self.prediction.pattern_class

    @property
    def gemm_support(self) -> np.ndarray:
        """Boolean mask over the (lowered) GEMM output."""
        return self.prediction.support

    def conv_support(self) -> np.ndarray:
        """Boolean mask over the ``(N, K, P, Q)`` convolution output."""
        if self.geometry is None:
            raise ValueError("conv_support requires a convolution context")
        return self.prediction.conv_support(self.geometry)


class HardwareModel:
    """The systolic-array hardware model for an application-level injector.

    Parameters
    ----------
    mesh:
        Target accelerator mesh size; unlike the RTL platform, *any* size
        is cheap here — including the 128x128 arrays the paper's FPGA
        could not synthesise.
    dataflow:
        The accelerator's mapping scheme.
    """

    def __init__(self, mesh: MeshConfig, dataflow: Dataflow) -> None:
        self.mesh = mesh
        self.dataflow = dataflow

    # ------------------------------------------------------------------
    # Pattern derivation
    # ------------------------------------------------------------------
    def derive_gemm(self, m: int, k: int, n: int, site: FaultSite) -> DerivedPattern:
        """Derive the pattern of ``site`` for an ``MxKxN`` GEMM."""
        plan = plan_gemm_tiling(m, k, n, self.mesh, self.dataflow)
        prediction = predict_pattern(site, plan)
        return DerivedPattern(
            prediction=prediction, mesh=self.mesh, dataflow=self.dataflow
        )

    def derive_conv(self, geometry: ConvGeometry, site: FaultSite) -> DerivedPattern:
        """Derive the pattern of ``site`` for a lowered convolution."""
        plan = plan_gemm_tiling(
            geometry.gemm_m, geometry.gemm_k, geometry.gemm_n, self.mesh, self.dataflow
        )
        prediction = predict_pattern(site, plan, geometry=geometry)
        return DerivedPattern(
            prediction=prediction,
            mesh=self.mesh,
            dataflow=self.dataflow,
            geometry=geometry,
        )

    def random_site(self, rng: np.random.Generator, bit: int = 20) -> FaultSite:
        """A uniformly random MAC site on this mesh (paper Fig. 2's dice)."""
        row = int(rng.integers(0, self.mesh.rows))
        col = int(rng.integers(0, self.mesh.cols))
        return FaultSite(row=row, col=col, bit=bit)

    # ------------------------------------------------------------------
    # Tensor corruption
    # ------------------------------------------------------------------
    @staticmethod
    def corrupt(
        tensor: np.ndarray,
        support: np.ndarray,
        bit: int,
        mode: str = "stuck1",
        dtype: IntType = INT32,
    ) -> np.ndarray:
        """Perturb ``tensor`` on the ``support`` cells.

        Parameters
        ----------
        mode:
            ``"stuck1"`` / ``"stuck0"`` force the bit; ``"flip"`` inverts
            it (the transient counterpart).

        Returns a new array; the input is never modified.
        """
        tensor = np.asarray(tensor)
        if support.shape != tensor.shape:
            raise ValueError(
                f"support shape {support.shape} != tensor shape {tensor.shape}"
            )
        flat = tensor.reshape(-1).astype(np.int64)
        mask = support.reshape(-1)
        affected = flat[mask]
        if mode == "stuck1":
            affected = force_bit_array(affected, bit, 1, dtype)
        elif mode == "stuck0":
            affected = force_bit_array(affected, bit, 0, dtype)
        elif mode == "flip":
            affected = flip_bit_array(affected, bit, dtype)
        else:
            raise ValueError(f"unknown corruption mode: {mode!r}")
        out = flat.copy()
        out[mask] = affected
        return out.reshape(tensor.shape)
