"""Application-level fault injection with a systolic-array hardware model.

This package implements the paper's proposed integration with tools like
TensorFI / PyTorchFI / LLTFI: instead of corrupting random tensor elements,
it derives the exact element/column/channel corruption pattern a stuck-at
fault in a given MAC would cause — for any mesh size and dataflow — and
applies it to operator outputs at runtime.

Public API
----------
:class:`~repro.appfi.runtime_patterns.HardwareModel`
    On-the-fly pattern derivation for GEMM and conv shapes.
:class:`~repro.appfi.injector.AppLevelInjector`
    The tensor-level injector with provenance history.
:func:`~repro.appfi.hooks.attach_permanent_fault`
    One-call hookup to a :class:`repro.nn.Sequential` model.
"""

from repro.appfi.hooks import attach_permanent_fault, detach_faults
from repro.appfi.injector import AppLevelInjector, InjectionRecord
from repro.appfi.runtime_patterns import DerivedPattern, HardwareModel

__all__ = [
    "HardwareModel",
    "DerivedPattern",
    "AppLevelInjector",
    "InjectionRecord",
    "attach_permanent_fault",
    "detach_faults",
]
