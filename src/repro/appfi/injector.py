"""The application-level fault injector (a TensorFI/LLTFI-style tool).

:class:`AppLevelInjector` perturbs the *outputs of tensor operations* —
never simulating the hardware — using the systolic-array-aware fault
patterns derived by :class:`~repro.appfi.runtime_patterns.HardwareModel`.
This is precisely the tool class the paper aims to improve: existing
application-level injectors corrupt single random elements; with the
paper's pattern model they corrupt the element/column/channel structure a
real stuck-at fault would produce.

The injector operates on plain numpy tensors, so it composes with the
:mod:`repro.nn` inference engine through :mod:`repro.appfi.hooks`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.appfi.runtime_patterns import DerivedPattern, HardwareModel
from repro.faults.sites import FaultSite
from repro.ops.im2col import ConvGeometry
from repro.systolic.array import MeshConfig
from repro.systolic.dataflow import Dataflow

__all__ = ["InjectionRecord", "AppLevelInjector"]


@dataclass(frozen=True)
class InjectionRecord:
    """Provenance of one application-level injection."""

    site: FaultSite
    pattern: DerivedPattern
    bit: int
    mode: str
    cells_corrupted: int


class AppLevelInjector:
    """Injects systolic-array fault patterns into tensor-op outputs.

    Parameters
    ----------
    mesh, dataflow:
        The hardware model to emulate. Any mesh size works — deriving
        patterns for a 128x128 array is as cheap as for 16x16, which is
        the scalability argument of the paper's discussion.
    bit:
        Output bit targeted by the value perturbation.
    mode:
        ``"stuck1"`` (default), ``"stuck0"`` or ``"flip"``.
    seed:
        Seed for random site selection.
    """

    def __init__(
        self,
        mesh: MeshConfig,
        dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
        bit: int = 20,
        mode: str = "stuck1",
        seed: int = 0,
    ) -> None:
        self.model = HardwareModel(mesh, dataflow)
        self.bit = bit
        self.mode = mode
        self._rng = np.random.default_rng(seed)
        self.history: list[InjectionRecord] = []

    # ------------------------------------------------------------------
    # GEMM outputs
    # ------------------------------------------------------------------
    def inject_gemm(
        self,
        output: np.ndarray,
        k: int,
        site: FaultSite | None = None,
    ) -> np.ndarray:
        """Corrupt a ``(M, N)`` GEMM output as a stuck-at at ``site`` would.

        Parameters
        ----------
        output:
            The fault-free operation output.
        k:
            The GEMM's reduction dimension (needed for the tiling plan).
        site:
            The faulty MAC; random when omitted.
        """
        output = np.asarray(output)
        if output.ndim != 2:
            raise ValueError(f"expected a 2-D GEMM output, got {output.shape}")
        if site is None:
            site = self.model.random_site(self._rng, bit=self.bit)
        m, n = output.shape
        pattern = self.model.derive_gemm(m, k, n, site)
        corrupted = self.model.corrupt(
            output, pattern.gemm_support, self.bit, self.mode
        )
        self._record(site, pattern, int(pattern.gemm_support.sum()))
        return corrupted

    # ------------------------------------------------------------------
    # Convolution outputs
    # ------------------------------------------------------------------
    def inject_conv(
        self,
        output: np.ndarray,
        geometry: ConvGeometry,
        site: FaultSite | None = None,
    ) -> np.ndarray:
        """Corrupt an ``(N, K, P, Q)`` convolution output."""
        output = np.asarray(output)
        if output.shape != (geometry.n, geometry.k, geometry.p, geometry.q):
            raise ValueError(
                f"output shape {output.shape} does not match geometry "
                f"({geometry.n}, {geometry.k}, {geometry.p}, {geometry.q})"
            )
        if site is None:
            site = self.model.random_site(self._rng, bit=self.bit)
        pattern = self.model.derive_conv(geometry, site)
        support = pattern.conv_support()
        corrupted = self.model.corrupt(output, support, self.bit, self.mode)
        self._record(site, pattern, int(support.sum()))
        return corrupted

    # ------------------------------------------------------------------
    def _record(
        self, site: FaultSite, pattern: DerivedPattern, cells: int
    ) -> None:
        self.history.append(
            InjectionRecord(
                site=site,
                pattern=pattern,
                bit=self.bit,
                mode=self.mode,
                cells_corrupted=cells,
            )
        )

    @property
    def last(self) -> InjectionRecord:
        """The most recent injection's provenance."""
        if not self.history:
            raise RuntimeError("no injection performed yet")
        return self.history[-1]
