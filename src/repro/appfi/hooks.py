"""Operator hooks binding the application-level injector to DNN models.

LLTFI and TensorFI instrument a model's operators so chosen ones are
perturbed at runtime; :func:`attach_permanent_fault` is the equivalent for
:class:`~repro.nn.model.Sequential` models: it routes every compute layer
through a :class:`~repro.nn.backends.PatternInjectionBackend` emulating one
permanent stuck-at fault in the modelled accelerator — every GEMM and
convolution the model executes is corrupted with the derived pattern, just
as a permanent hardware fault corrupts every operation that runs on the
faulty mesh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.appfi.injector import AppLevelInjector
from repro.faults.sites import FaultSite
from repro.systolic.array import MeshConfig
from repro.systolic.dataflow import Dataflow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.model import Sequential

__all__ = ["attach_permanent_fault", "detach_faults"]


def attach_permanent_fault(
    model: "Sequential",
    mesh: MeshConfig,
    site: FaultSite,
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
    bit: int = 20,
    mode: str = "stuck1",
) -> AppLevelInjector:
    """Emulate a permanent stuck-at fault under ``model`` at app level.

    Returns the injector so callers can inspect ``injector.history`` (one
    record per corrupted operation) after running inference.
    """
    # Imported here (not at module scope) to keep repro.appfi importable
    # independently of repro.nn and avoid a circular import through
    # repro.nn.backends.
    from repro.nn.backends import PatternInjectionBackend

    injector = AppLevelInjector(mesh, dataflow=dataflow, bit=bit, mode=mode)
    model.set_backend(PatternInjectionBackend(injector, site))
    return injector


def detach_faults(model: "Sequential") -> None:
    """Restore golden execution on every compute layer."""
    from repro.nn.backends import ReferenceBackend

    model.set_backend(ReferenceBackend())
