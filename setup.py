"""Legacy setup shim.

This repository is configured through ``pyproject.toml``; this file exists
only so that ``pip install -e .`` works on environments without the
``wheel`` package (PEP 517 editable builds require it; the legacy
``setup.py develop`` path does not).
"""

from setuptools import setup

setup()
