"""Unit tests for the hand-rolled HTTP layer and the SSE encoder.

These run the parser against in-memory :class:`asyncio.StreamReader`
instances — no sockets — so every malformed-input branch is exercised
deterministically: bad request lines, header floods, body caps, torn
bodies, and the timeout paths the socket-discipline contract demands.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_HEADER_LINES,
    HttpError,
    HttpRequest,
    json_response,
    read_request,
    render_response,
)
from repro.service.sse import format_event


def parse(raw: bytes, timeout: float = 1.0, max_body: int = 1024):
    """Feed ``raw`` to the parser as a complete client transmission."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, timeout, max_body)

    return asyncio.run(go())


def parse_error(raw: bytes, **kwargs) -> HttpError:
    with pytest.raises(HttpError) as excinfo:
        parse(raw, **kwargs)
    return excinfo.value


class TestReadRequest:
    def test_get_with_query_and_encoded_path(self):
        request = parse(
            b"GET /campaigns/job%2D1?limit=5&full=yes HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/campaigns/job-1"
        assert request.query == {"limit": "5", "full": "yes"}
        assert request.headers["host"] == "localhost"
        assert request.body == b""

    def test_post_with_body(self):
        body = json.dumps({"mesh": {"rows": 4, "cols": 4}}).encode()
        request = parse(
            b"POST /campaigns HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.json() == {"mesh": {"rows": 4, "cols": 4}}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        assert parse_error(b"GET\r\n\r\n").status == 400

    def test_unsupported_protocol(self):
        exc = parse_error(b"GET / HTTP/2\r\n\r\n")
        assert exc.status == 400
        assert "HTTP/2" in exc.detail

    def test_chunked_body_not_implemented(self):
        exc = parse_error(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        assert exc.status == 501

    def test_body_over_cap_is_413(self):
        exc = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n",
            max_body=1024,
        )
        assert exc.status == 413
        assert "1024-byte cap" in exc.detail

    def test_body_shorter_than_declared_is_400(self):
        exc = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        )
        assert exc.status == 400
        assert "shorter than Content-Length" in exc.detail

    def test_malformed_content_length(self):
        exc = parse_error(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        assert exc.status == 400

    def test_negative_content_length(self):
        assert parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        ).status == 400

    def test_header_line_without_colon(self):
        assert parse_error(
            b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n"
        ).status == 400

    def test_header_flood_is_400(self):
        flood = b"".join(
            b"X-Pad-%d: x\r\n" % i for i in range(MAX_HEADER_LINES + 1)
        )
        exc = parse_error(b"GET / HTTP/1.1\r\n" + flood + b"\r\n")
        assert exc.status == 400
        assert str(MAX_HEADER_LINES) in exc.detail

    def test_stalled_peer_times_out_408(self):
        async def go():
            reader = asyncio.StreamReader()  # never fed: a silent peer
            with pytest.raises(HttpError) as excinfo:
                await read_request(reader, 0.05, 1024)
            return excinfo.value

        assert asyncio.run(go()).status == 408


class TestResponses:
    def test_render_response_shape(self):
        payload = render_response(200, b"hi", content_type="text/plain")
        head, _, body = payload.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2" in head
        assert b"Connection: close" in head
        assert body == b"hi"

    def test_json_response_round_trips(self):
        payload = json_response(201, {"job_id": "job-1"})
        _, _, body = payload.partition(b"\r\n\r\n")
        assert json.loads(body) == {"job_id": "job-1"}

    def test_error_status_reasons(self):
        assert b"429 Too Many Requests" in json_response(429, {})
        assert b"409 Conflict" in json_response(409, {})

    def test_request_json_rejects_garbage(self):
        request = HttpRequest(method="POST", path="/", body=b"{nope")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestSseEncoding:
    def test_frame_anatomy(self):
        frame = format_event("progress", {"done": 3, "total": 16})
        lines = frame.decode().split("\n")
        assert lines[0] == "event: progress"
        assert json.loads(lines[1].removeprefix("data: ")) == {
            "done": 3, "total": 16,
        }
        assert frame.endswith(b"\n\n")
