"""Codec tests for the service tier: campaign specs, job records, the
job registry stream, and the full-fidelity result artefact.

The spec codec is the service's input-validation boundary — every error
must name the offending field by dotted path, and the round trip
``decode(encode(campaign))`` must be lossless. The job registry reuses
the checkpoint stream's torn-write hygiene, so the same recovery
invariants are pinned here: torn tails heal, torn records skip with a
warning, corrupt headers refuse.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import Campaign, ConvWorkload, GemmWorkload
from repro.core.executor import SerialExecutor
from repro.core.resilience import CheckpointCorrupt
from repro.core.serialize import (
    JOB_STATES,
    SCHEMA_VERSION,
    SpecError,
    campaign_result_from_record,
    campaign_result_record,
    decode_campaign_spec,
    encode_campaign_spec,
    job_from_record,
    job_record,
    job_registry_header,
    read_job_registry,
)
from repro.service.jobs import JobManager
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import assert_campaigns_equivalent


def gemm_spec(**overrides):
    """A minimal valid spec; overrides merge at the top level."""
    spec = {
        "mesh": {"rows": 4, "cols": 4},
        "workload": {"op": "gemm", "m": 8, "k": 8, "n": 8},
    }
    spec.update(overrides)
    return spec


def spec_error(data) -> SpecError:
    with pytest.raises(SpecError) as excinfo:
        decode_campaign_spec(data)
    return excinfo.value


class TestSpecDecode:
    def test_minimal_gemm_defaults(self):
        campaign, executor = decode_campaign_spec(gemm_spec())
        assert campaign.mesh == MeshConfig(rows=4, cols=4)
        assert isinstance(campaign.workload, GemmWorkload)
        assert campaign.workload.dataflow is Dataflow.WEIGHT_STATIONARY
        assert campaign.engine_kind == "functional"
        assert campaign.keep_patterns is True
        assert len(campaign.sites) == 16
        assert executor == {"kind": "serial"}

    def test_conv_workload(self):
        campaign, _ = decode_campaign_spec(gemm_spec(workload={
            "op": "conv",
            "input_size": 6,
            "kernel": [3, 3, 2, 4],
            "stride": 1,
            "padding": 1,
        }))
        workload = campaign.workload
        assert isinstance(workload, ConvWorkload)
        assert workload.kernel_rows == 3
        assert workload.out_channels == 4

    def test_explicit_sites_decode_as_tuples(self):
        campaign, _ = decode_campaign_spec(
            gemm_spec(sites=[[0, 0], [3, 3]])
        )
        assert campaign.sites == [(0, 0), (3, 3)]

    def test_executor_parallel_default_jobs(self):
        _, executor = decode_campaign_spec(
            gemm_spec(executor={"kind": "parallel"})
        )
        assert executor == {"kind": "parallel", "jobs": 2}

    def test_executor_fabric_defaults(self):
        _, executor = decode_campaign_spec(
            gemm_spec(executor={"kind": "fabric", "port": 9500})
        )
        assert executor == {
            "kind": "fabric",
            "host": "127.0.0.1",
            "port": 9500,
            "workers": 2,
            "lease_seconds": 10.0,
            "heartbeat_interval": 2.0,
            "join_timeout": 60.0,
        }


class TestSpecErrors:
    """Every rejection names the broken field by dotted path."""

    def test_unknown_top_level_field(self):
        assert spec_error(gemm_spec(frob=1)).path == "frob"

    def test_unknown_workload_field(self):
        exc = spec_error(gemm_spec(workload={
            "op": "gemm", "m": 8, "k": 8, "n": 8, "frob": 1,
        }))
        assert str(exc) == "workload.frob: unknown field"

    def test_unknown_executor_field(self):
        exc = spec_error(gemm_spec(executor={"kind": "serial", "frob": 1}))
        assert exc.path == "executor.frob"

    def test_missing_mesh(self):
        exc = spec_error({"workload": {"op": "gemm", "m": 1, "k": 1, "n": 1}})
        assert (exc.path, exc.message) == ("mesh", "required field")

    def test_missing_gemm_dimension(self):
        exc = spec_error(gemm_spec(workload={"op": "gemm", "m": 8, "k": 8}))
        assert str(exc) == "workload.n: required field"

    def test_wrong_type_names_field(self):
        exc = spec_error(gemm_spec(workload={
            "op": "gemm", "m": "eight", "k": 8, "n": 8,
        }))
        assert exc.path == "workload.m"
        assert "expected an integer" in exc.message

    def test_bool_is_not_an_integer(self):
        exc = spec_error(gemm_spec(mesh={"rows": True, "cols": 4}))
        assert exc.path == "mesh.rows"

    def test_site_outside_mesh_names_index(self):
        exc = spec_error(gemm_spec(sites=[[0, 0], [4, 0]]))
        assert exc.path == "sites[1]"
        assert "outside the 4x4 mesh" in exc.message

    def test_malformed_site_names_index(self):
        exc = spec_error(gemm_spec(sites=[[0, 0, 0]]))
        assert exc.path == "sites[0]"

    def test_schema_version_guard(self):
        exc = spec_error(gemm_spec(schema_version=999))
        assert exc.path == "schema_version"
        assert "999" in exc.message

    def test_wrong_kind(self):
        exc = spec_error(gemm_spec(kind="campaign-result"))
        assert exc.path == "kind"

    def test_bad_engine_choice(self):
        exc = spec_error(gemm_spec(engine="quantum"))
        assert exc.path == "engine"
        assert "analytic" in exc.message

    def test_fabric_heartbeat_must_beat_lease(self):
        exc = spec_error(gemm_spec(executor={
            "kind": "fabric",
            "lease_seconds": 2.0,
            "heartbeat_interval": 2.0,
        }))
        assert exc.path == "executor.heartbeat_interval"

    def test_non_object_spec(self):
        exc = spec_error([1, 2, 3])
        assert "expected an object" in exc.message


class TestSpecRoundTrip:
    @pytest.mark.parametrize("executor", [
        None,
        {"kind": "parallel", "jobs": 3},
        {
            "kind": "fabric", "host": "127.0.0.1", "port": 9500,
            "workers": 2, "lease_seconds": 5.0,
            "heartbeat_interval": 1.0, "join_timeout": 30.0,
        },
    ])
    def test_gemm_round_trip(self, executor):
        campaign, decoded_executor = decode_campaign_spec(gemm_spec(
            engine="analytic",
            fault={"signal": "sum", "bit": 12, "stuck": 0},
            sites=[[1, 2], [2, 1]],
            keep_patterns=False,
            executor=executor or {"kind": "serial"},
        ))
        encoded = encode_campaign_spec(campaign, decoded_executor)
        rebuilt, executor_again = decode_campaign_spec(encoded)
        assert rebuilt.mesh == campaign.mesh
        assert rebuilt.workload == campaign.workload
        assert rebuilt.fault_spec == campaign.fault_spec
        assert rebuilt.engine_kind == campaign.engine_kind
        assert rebuilt.sites == campaign.sites
        assert rebuilt.keep_patterns == campaign.keep_patterns
        assert executor_again == decoded_executor
        # And the encoding itself is a fixed point.
        assert encode_campaign_spec(rebuilt, executor_again) == encoded

    def test_conv_round_trip(self):
        campaign, executor = decode_campaign_spec(gemm_spec(workload={
            "op": "conv", "input_size": 6, "kernel": [3, 3, 2, 4],
            "batch": 2, "stride": 2, "padding": 1,
            "dataflow": "OS", "fill": "random", "seed": 7,
        }))
        rebuilt, _ = decode_campaign_spec(
            encode_campaign_spec(campaign, executor)
        )
        assert rebuilt.workload == campaign.workload

    def test_encoded_spec_is_json_clean(self):
        campaign, executor = decode_campaign_spec(gemm_spec())
        encoded = encode_campaign_spec(campaign, executor)
        assert json.loads(json.dumps(encoded)) == encoded
        assert encoded["sites"] == [list(site) for site in campaign.sites]


class TestJobRecords:
    def test_round_trip(self):
        record = job_record("job-000007", 3, "running", gemm_spec())
        assert job_from_record(record) == {
            "job_id": "job-000007",
            "seq": 3,
            "state": "running",
            "spec": gemm_spec(),
            "error": None,
        }

    def test_every_state_is_encodable(self):
        for state in JOB_STATES:
            assert job_from_record(
                job_record("job-1", 0, state, {})
            )["state"] == state

    def test_unknown_state_rejected_on_write(self):
        with pytest.raises(ValueError, match="unknown job state"):
            job_record("job-1", 0, "paused", {})

    def test_unknown_field_rejected(self):
        record = job_record("job-1", 0, "queued", {})
        record["frob"] = 1
        with pytest.raises(ValueError, match="unknown job record fields"):
            job_from_record(record)

    def test_schema_version_guard(self):
        record = job_record("job-1", 0, "queued", {})
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            job_from_record(record)

    def test_missing_field_rejected(self):
        record = job_record("job-1", 0, "queued", {})
        del record["seq"]
        with pytest.raises(ValueError, match="missing 'seq'"):
            job_from_record(record)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a job record"):
            job_from_record({"kind": "experiment"})


def write_registry(path, *records, torn: str | None = None):
    lines = [json.dumps(job_registry_header())]
    lines.extend(json.dumps(record) for record in records)
    text = "\n".join(lines) + "\n"
    if torn is not None:
        text += torn  # no trailing newline: a torn tail
    path.write_text(text)


class TestJobRegistryStream:
    def test_read_in_file_order(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        write_registry(
            path,
            job_record("job-1", 0, "queued", {}),
            job_record("job-1", 1, "running", {}),
        )
        states = [r["state"] for r in read_job_registry(path)]
        assert states == ["queued", "running"]

    def test_torn_tail_record_skipped_with_warning(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        write_registry(
            path,
            job_record("job-1", 0, "queued", {}),
            torn='{"kind": "job", "job_id": "job-2", "se',
        )
        with pytest.warns(RuntimeWarning, match="corrupt job registry"):
            records = read_job_registry(path)
        assert [r["job_id"] for r in records] == ["job-1"]

    def test_corrupt_header_refused(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"kind": "checkpoint"}\n')
        with pytest.raises(ValueError, match="not a job registry"):
            read_job_registry(path)

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_job_registry(path)

    def test_manager_heals_torn_tail_and_restores(self, tmp_path):
        """The writer appends a newline before new records, so the torn
        fragment damages exactly one snapshot — not the one after it."""
        registry = tmp_path / "jobs.jsonl"
        write_registry(
            registry,
            job_record("job-000001", 0, "queued", gemm_spec()),
            torn='{"kind": "job", "job_id": "job-000002"',
        )
        manager = JobManager(tmp_path)
        with pytest.warns(RuntimeWarning):
            restored = manager.open(resume=True)
        assert restored == 1
        job = manager.get("job-000001")
        assert job.state == "queued"
        # The healed stream accepts appends that survive a re-read.
        manager._transition(job, "running")
        manager.close()
        with pytest.warns(RuntimeWarning):
            records = read_job_registry(registry)
        assert records[-1]["state"] == "running"

    def test_manager_refuses_torn_header(self, tmp_path):
        (tmp_path / "jobs.jsonl").write_text('{"kind": "job-registr')
        with pytest.raises(CheckpointCorrupt, match="torn or unrecognizable"):
            JobManager(tmp_path).open()

    def test_running_jobs_requeue_on_resume(self, tmp_path):
        write_registry(
            tmp_path / "jobs.jsonl",
            job_record("job-000001", 1, "done", gemm_spec()),
            job_record("job-000002", 1, "running", gemm_spec()),
        )
        manager = JobManager(tmp_path)
        assert manager.open(resume=True) == 1
        requeued = manager.get("job-000002")
        assert requeued.state == "queued"
        assert requeued.seq == 2
        assert manager.get("job-000001").state == "done"
        # Fresh ids continue past everything ever recorded.
        assert manager.submit(gemm_spec()).job_id == "job-000003"
        manager.close()


class TestResultArtefact:
    def test_full_fidelity_round_trip(self):
        campaign, _ = decode_campaign_spec(gemm_spec())
        result = campaign.run(SerialExecutor())
        artefact = json.loads(json.dumps(campaign_result_record(result)))
        rebuilt = campaign_result_from_record(artefact, campaign)
        assert_campaigns_equivalent(result, rebuilt)

    def test_round_trip_without_patterns(self):
        campaign, _ = decode_campaign_spec(
            gemm_spec(keep_patterns=False, sites=[[0, 0], [1, 1]])
        )
        result = campaign.run(SerialExecutor())
        rebuilt = campaign_result_from_record(
            campaign_result_record(result), campaign
        )
        assert_campaigns_equivalent(result, rebuilt)

    def test_schema_version_guard(self):
        campaign, _ = decode_campaign_spec(gemm_spec(sites=[[0, 0]]))
        result = campaign.run(SerialExecutor())
        artefact = campaign_result_record(result)
        artefact["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            campaign_result_from_record(artefact, campaign)

    def test_wrong_kind_rejected(self):
        campaign, _ = decode_campaign_spec(gemm_spec(sites=[[0, 0]]))
        with pytest.raises(ValueError, match="not a campaign result"):
            campaign_result_from_record({"kind": "job"}, campaign)
