"""End-to-end tests for the campaign service over real HTTP.

Each test boots a :class:`CampaignService` on a background thread
(port 0, announce callback for discovery) and talks to it with stdlib
clients only — ``urllib`` for the JSON API and SSE, raw sockets where a
test needs to observe transport-level chaos. The headline contract: a
campaign submitted over HTTP produces a result artefact that rebuilds
*field-for-field identical* to a direct in-process run, across every
executor kind.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.chaos import ChaosAction, ChaosSpec
from repro.core.executor import SerialExecutor
from repro.core.fabric.worker import WorkerAgent
from repro.core.serialize import (
    campaign_result_from_record,
    decode_campaign_spec,
    read_job_registry,
)
from repro.service import SERVICE_CHAOS_SITE, CampaignService, QueueFull
from repro.service.jobs import JobManager

from tests.core._support import assert_campaigns_equivalent

SPEC = {
    "mesh": {"rows": 4, "cols": 4},
    "workload": {"op": "gemm", "m": 8, "k": 8, "n": 8},
}

#: A sleep on every site: dilates a job by ~3 s without failing it, so
#: cancellation tests have a window while the job is running.
SLOW_CHAOS = ChaosSpec.build({
    (row, col): ChaosAction("sleep", times=None, seconds=0.2)
    for row in range(4)
    for col in range(4)
})


@contextlib.contextmanager
def running_service(tmp_path, **kwargs):
    """A live service on a daemon thread; yields ``(service, port)``."""
    ready = threading.Event()
    bound: dict[str, int] = {}

    def announce(host: str, port: int) -> None:
        bound["port"] = port
        ready.set()

    kwargs.setdefault("sse_interval", 0.05)
    service = CampaignService(
        "127.0.0.1", 0, tmp_path / "state", announce=announce, **kwargs
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert ready.wait(10), "service never announced its port"
    try:
        yield service, bound["port"]
    finally:
        service.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "service thread failed to shut down"


def api(port, method, path, payload=None, timeout=30):
    """One JSON API exchange; returns ``(status, decoded body)``."""
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def stream_events(port, job_id, timeout=120):
    """Consume the SSE stream to its terminal ``end`` frame."""
    events = []
    url = f"http://127.0.0.1:{port}/campaigns/{job_id}/events"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        event = None
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                event = line.removeprefix("event: ")
            elif line.startswith("data: "):
                events.append((event, json.loads(line.removeprefix("data: "))))
                if event == "end":
                    return events
    raise AssertionError("SSE stream closed without an end frame")


def wait_for_state(port, job_id, states, timeout=60):
    """Poll the job detail endpoint until its state lands in ``states``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, detail = api(port, "GET", f"/campaigns/{job_id}")
        if detail["state"] in states:
            return detail
        time.sleep(0.05)
    raise AssertionError(f"{job_id} never reached {states}")


def assert_result_identity(port, job_id, spec=SPEC):
    """The submitted job's artefact rebuilds bit-identical to a direct
    in-process serial run of the same spec."""
    status, artefact = api(port, "GET", f"/campaigns/{job_id}/result")
    assert status == 200
    assert artefact["kind"] == "campaign-result"
    campaign, _ = decode_campaign_spec(spec)
    rebuilt = campaign_result_from_record(artefact, campaign)
    reference, _ = decode_campaign_spec(spec)
    assert_campaigns_equivalent(reference.run(SerialExecutor()), rebuilt)


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestSubmitToResult:
    def test_serial_job_round_trip(self, tmp_path):
        with running_service(tmp_path) as (_, port):
            status, job = api(port, "POST", "/campaigns", SPEC)
            assert status == 201
            assert job["state"] == "queued"
            assert job["executor"] == "serial"
            assert job["sites"] == 16

            events = stream_events(port, job["job_id"])
            names = [name for name, _ in events]
            assert names[-1] == "end"
            assert set(names[:-1]) == {"progress"}
            end = events[-1][1]
            assert end["state"] == "done"
            assert end["error"] is None
            # The final progress frame carries the obs counters.
            last_progress = events[-2][1]
            assert last_progress["total"] == 16
            assert last_progress["done"] == 16

            assert_result_identity(port, job["job_id"])

    def test_parallel_job_round_trip(self, tmp_path):
        spec = dict(SPEC, executor={"kind": "parallel", "jobs": 2})
        with running_service(tmp_path) as (_, port):
            _, job = api(port, "POST", "/campaigns", spec)
            stream_events(port, job["job_id"])
            assert_result_identity(port, job["job_id"], spec)

    def test_fabric_job_round_trip(self, tmp_path):
        port_fabric = free_port()
        spec = dict(SPEC, executor={
            "kind": "fabric",
            "port": port_fabric,
            "workers": 2,
            "lease_seconds": 1.5,
            "heartbeat_interval": 0.3,
            "join_timeout": 30.0,
        })
        threads = []
        for _ in range(2):
            agent = WorkerAgent(
                "127.0.0.1",
                port_fabric,
                jobs=1,
                reconnect_attempts=60,
                reconnect_delay=0.25,
            )
            thread = threading.Thread(target=agent.run, daemon=True)
            thread.start()
            threads.append(thread)
        with running_service(tmp_path) as (_, port):
            _, job = api(port, "POST", "/campaigns", spec)
            events = stream_events(port, job["job_id"])
            assert events[-1][1]["state"] == "done"
            assert_result_identity(port, job["job_id"], spec)
        for thread in threads:
            thread.join(timeout=30)

    def test_stored_spec_is_canonical(self, tmp_path):
        """GET returns the normalised spec: defaults filled, sites explicit."""
        with running_service(tmp_path) as (_, port):
            _, job = api(port, "POST", "/campaigns", SPEC)
            _, detail = api(port, "GET", f"/campaigns/{job['job_id']}")
            spec = detail["spec"]
            assert spec["engine"] == "functional"
            assert spec["executor"] == {"kind": "serial"}
            assert len(spec["sites"]) == 16
            assert spec["workload"]["dataflow"] == "WS"
            assert "progress" in detail

    def test_job_listing_in_submission_order(self, tmp_path):
        with running_service(tmp_path) as (_, port):
            first = api(port, "POST", "/campaigns", SPEC)[1]["job_id"]
            second = api(port, "POST", "/campaigns", SPEC)[1]["job_id"]
            _, listing = api(port, "GET", "/campaigns")
            assert [j["job_id"] for j in listing["jobs"]] == [first, second]
            wait_for_state(port, second, {"done"})


class TestCancellation:
    def test_cancel_queued_and_running(self, tmp_path):
        slow = dict(SPEC, executor={"kind": "parallel", "jobs": 1})
        with running_service(tmp_path, job_chaos=SLOW_CHAOS) as (_, port):
            _, running = api(port, "POST", "/campaigns", slow)
            _, queued = api(port, "POST", "/campaigns", SPEC)
            wait_for_state(port, running["job_id"], {"running"})

            # Queued: cancellation is immediate.
            status, cancelled = api(
                port, "DELETE", f"/campaigns/{queued['job_id']}"
            )
            assert status == 200
            assert cancelled["state"] == "cancelled"
            assert cancelled["error"] == "cancelled while queued"

            # Running: cooperative — the executor drains at a shard
            # boundary and the manager records the client's intent.
            api(port, "DELETE", f"/campaigns/{running['job_id']}")
            detail = wait_for_state(port, running["job_id"], {"cancelled"})
            assert detail["error"] == "cancelled by client"

            # Terminal jobs refuse a second cancel.
            status, body = api(
                port, "DELETE", f"/campaigns/{running['job_id']}"
            )
            assert status == 409
            assert "already cancelled" in body["error"]

            # And their result endpoint reports the conflict, not a 500.
            status, body = api(
                port, "GET", f"/campaigns/{running['job_id']}/result"
            )
            assert status == 409


class TestBackpressureAndErrors:
    def test_queue_full_is_429(self, tmp_path):
        with running_service(tmp_path, max_queued=0) as (_, port):
            status, body = api(port, "POST", "/campaigns", SPEC)
            assert status == 429
            assert "capacity" in body["error"]

    def test_manager_capacity_is_queued_jobs_only(self, tmp_path):
        manager = JobManager(tmp_path, max_queued=1)
        manager.open()
        manager.submit(SPEC)
        with pytest.raises(QueueFull):
            manager.submit(SPEC)
        manager.close()

    def test_invalid_spec_is_400_with_field_path(self, tmp_path):
        bad = dict(SPEC, workload={"op": "gemm", "m": 8, "k": 8,
                                   "n": 8, "frob": 1})
        with running_service(tmp_path) as (_, port):
            status, body = api(port, "POST", "/campaigns", bad)
            assert status == 400
            assert body["error"] == "workload.frob: unknown field"

    def test_non_json_body_is_400(self, tmp_path):
        with running_service(tmp_path) as (_, port):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/campaigns",
                data=b"{nope", method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400

    def test_oversized_body_is_413(self, tmp_path):
        with running_service(tmp_path, max_body=2048) as (_, port):
            padded = dict(SPEC, workload=dict(SPEC["workload"], seed=0))
            body = json.dumps(padded).encode() + b" " * 4096
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/campaigns",
                data=body, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 413

    def test_unknown_routes_and_methods(self, tmp_path):
        with running_service(tmp_path) as (_, port):
            assert api(port, "GET", "/nope")[0] == 404
            assert api(port, "GET", "/campaigns/job-999999")[0] == 404
            assert api(port, "PUT", "/campaigns")[0] == 405


class TestMetrics:
    def test_prometheus_exposition(self, tmp_path):
        with running_service(tmp_path) as (_, port):
            _, job = api(port, "POST", "/campaigns", SPEC)
            stream_events(port, job["job_id"])
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
                text = response.read().decode()
        assert 'repro_service_jobs{state="done"} 1' in text
        assert 'repro_service_jobs{state="queued"} 0' in text
        assert "repro_service_requests_total" in text
        assert 'method="POST",status="201"' in text.replace(" ", "")


def raw_exchange(port, payload: bytes, timeout=10.0) -> bytes:
    """Send raw bytes, read to EOF/reset; returns whatever arrived."""
    chunks = []
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(payload)
        with contextlib.suppress(ConnectionResetError, TimeoutError):
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    return b"".join(chunks)


LIST_REQUEST = b"GET /campaigns HTTP/1.1\r\nHost: t\r\n\r\n"


class TestTransportChaos:
    """The four network chaos modes against the HTTP transport: each
    either heals transparently or surfaces as a clean transport error —
    and none of them corrupts the job registry."""

    def chaos(self, tmp_path, kind, seconds=0.0):
        counters = tmp_path / "chaos"
        counters.mkdir()
        return ChaosSpec.build(
            {SERVICE_CHAOS_SITE: ChaosAction(kind, times=1, seconds=seconds)},
            state_dir=counters,
        )

    def assert_service_healthy(self, tmp_path, port):
        """Post-chaos: the API serves, jobs complete, registry reads."""
        _, job = api(port, "POST", "/campaigns", SPEC)
        stream_events(port, job["job_id"])
        assert_result_identity(port, job["job_id"])
        records = read_job_registry(tmp_path / "state" / "jobs.jsonl")
        assert [r["state"] for r in records if r["job_id"] == job["job_id"]][
            -1
        ] == "done"

    def test_drop_resets_one_exchange(self, tmp_path):
        chaos = self.chaos(tmp_path, "drop")
        with running_service(tmp_path, chaos=chaos) as (_, port):
            assert raw_exchange(port, LIST_REQUEST) == b""
            # The budget (times=1) is spent; the retry goes through.
            assert api(port, "GET", "/campaigns")[0] == 200
            self.assert_service_healthy(tmp_path, port)

    def test_truncate_tears_one_response(self, tmp_path):
        chaos = self.chaos(tmp_path, "truncate")
        with running_service(tmp_path, chaos=chaos) as (_, port):
            torn = raw_exchange(port, LIST_REQUEST)
            # The budget is spent; the same exchange now completes, and
            # the torn transmission was a strict prefix of it.
            healthy = raw_exchange(port, LIST_REQUEST)
            assert healthy.startswith(b"HTTP/1.1 200 OK")
            assert len(torn) < len(healthy), "truncate must tear the response"
            assert healthy.startswith(torn)
            self.assert_service_healthy(tmp_path, port)

    def test_stall_delays_then_heals(self, tmp_path):
        chaos = self.chaos(tmp_path, "stall", seconds=0.4)
        with running_service(tmp_path, chaos=chaos) as (_, port):
            started = time.monotonic()
            assert api(port, "GET", "/campaigns")[0] == 200
            assert time.monotonic() - started >= 0.4
            self.assert_service_healthy(tmp_path, port)

    def test_replay_duplicates_payload(self, tmp_path):
        chaos = self.chaos(tmp_path, "replay")
        with running_service(tmp_path, chaos=chaos) as (_, port):
            doubled = raw_exchange(port, LIST_REQUEST)
            assert doubled.count(b"HTTP/1.1 200 OK") == 2
            # A Content-Length-honouring client reads exactly one copy.
            self.assert_service_healthy(tmp_path, port)
