"""Crash recovery: SIGKILL the serving process mid-job, restart with
``serve --resume``, and the job completes to the same bit-identical
result a direct run produces.

This is the service's headline durability claim, so it is tested at
full process fidelity: a real ``repro-fi serve`` subprocess, a real
SIGKILL (no atexit, no flush — the fsynced registry and the job's own
campaign checkpoint are all that survive), and a second subprocess that
must pick the work back up from disk alone.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.core.executor import SerialExecutor
from repro.core.serialize import (
    campaign_result_from_record,
    decode_campaign_spec,
    read_job_registry,
)

from tests.core._support import assert_campaigns_equivalent

#: Cycle-accurate engine on a 10x10 mesh: a few seconds of real work —
#: wide enough to land a SIGKILL mid-campaign, small enough to re-run
#: the serial reference in-process.
SLOW_SPEC = {
    "mesh": {"rows": 10, "cols": 10},
    "workload": {"op": "gemm", "m": 12, "k": 12, "n": 12},
    "engine": "cycle",
    "executor": {"kind": "parallel", "jobs": 2},
}

ANNOUNCE = re.compile(r"http://127\.0\.0\.1:(\d+)")


def spawn_server(state_dir, *extra: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro-fi serve`` on a free port; returns (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--listen", "127.0.0.1:0",
            "--state-dir", str(state_dir),
            "--sse-interval", "0.1",
            *extra,
        ],
        env=env,
        cwd="/root/repo",
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = ANNOUNCE.search(line)
    assert match, f"no announce line from serve (got {line!r})"
    return proc, int(match.group(1))


def api(port, method, path, payload=None, timeout=30):
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_until(port, job_id, predicate, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            _, detail = api(port, "GET", f"/campaigns/{job_id}", timeout=10)
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.1)
            continue
        if predicate(detail):
            return detail
        time.sleep(0.1)
    raise AssertionError(f"{job_id}: condition not reached in {timeout}s")


def test_sigkill_then_resume_completes_identically(tmp_path):
    state_dir = tmp_path / "state"
    first, port = spawn_server(state_dir)
    try:
        status, job = api(port, "POST", "/campaigns", SLOW_SPEC)
        assert status == 201
        job_id = job["job_id"]

        # Let it get properly underway: running, with at least one
        # shard checkpointed — the state a crash must not orphan.
        detail = wait_until(
            port,
            job_id,
            lambda d: d["state"] == "running" and d["progress"]["done"] >= 1,
            timeout=60,
        )
        assert detail["state"] == "running", (
            f"expected to kill mid-run, job was {detail['state']}"
        )
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=30)
    finally:
        if first.poll() is None:
            first.kill()

    # No serve process alive; the registry on disk already tells the
    # story — last snapshot has the job running, mid-flight.
    records = [
        r for r in read_job_registry(state_dir / "jobs.jsonl")
        if r["job_id"] == job_id
    ]
    assert records[-1]["state"] == "running"

    second, port = spawn_server(state_dir, "--resume")
    try:
        detail = wait_until(
            port, job_id, lambda d: d["state"] == "done", timeout=180
        )
        assert detail["error"] is None
        # The re-run resumed from the campaign checkpoint rather than
        # starting a fresh job id: same id, later lifecycle sequence.
        status, artefact = api(port, "GET", f"/campaigns/{job_id}/result")
        assert status == 200

        campaign, _ = decode_campaign_spec(SLOW_SPEC)
        rebuilt = campaign_result_from_record(artefact, campaign)
        reference, _ = decode_campaign_spec(SLOW_SPEC)
        assert_campaigns_equivalent(reference.run(SerialExecutor()), rebuilt)

        # Orderly exit: SIGTERM drains and returns 0.
        second.send_signal(signal.SIGTERM)
        assert second.wait(timeout=60) == 0
    finally:
        if second.poll() is None:
            second.kill()

    # The registry remained append-only across the crash: the job's
    # lifecycle re-walks queued -> running -> done after the requeue.
    states = [
        r["state"]
        for r in read_job_registry(state_dir / "jobs.jsonl")
        if r["job_id"] == job_id
    ]
    assert states[:2] == ["queued", "running"]
    assert states[-1] == "done"
    assert "queued" in states[2:], "resume should have re-queued the job"


def test_free_port_binding_announces_real_port(tmp_path):
    """Port 0 in --listen resolves to a real bound port in the announce
    line (the CI smoke job depends on this)."""
    proc, port = spawn_server(tmp_path / "state")
    try:
        assert port > 0
        probe = socket.create_connection(("127.0.0.1", port), timeout=10)
        probe.close()
        status, listing = api(port, "GET", "/campaigns")
        assert status == 200
        assert listing == {"jobs": []}
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
