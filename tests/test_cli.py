"""Unit tests for the repro-fi command-line interface."""

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main

PACKAGE_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.op == "gemm"
        assert args.dataflow == "WS"
        assert args.bit == 20

    def test_predict_requires_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--row", "0", "--col", "0"])

    def test_jobs_flag_parses_on_campaign_and_study(self):
        assert build_parser().parse_args(["campaign"]).jobs == 1
        assert build_parser().parse_args(["campaign", "-j", "4"]).jobs == 4
        assert build_parser().parse_args(["campaign", "--jobs", "2"]).jobs == 2
        assert build_parser().parse_args(["study", "-j", "3"]).jobs == 3

    def test_resume_and_checkpoint_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--checkpoint", "c.jsonl", "--resume", "c.jsonl"]
        )
        assert args.checkpoint == "c.jsonl"
        assert args.resume == "c.jsonl"

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_nonpositive_jobs_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["campaign", "--jobs", bad])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["campaign", "study"])
    def test_resilience_flags_parse_with_defaults(self, command):
        args = build_parser().parse_args([command])
        assert args.shard_timeout is None
        assert args.max_retries is None
        assert args.on_error == "quarantine"
        args = build_parser().parse_args(
            [command, "--shard-timeout", "30", "--max-retries", "0",
             "--on-error", "abort"]
        )
        assert args.shard_timeout == 30.0
        assert args.max_retries == 0
        assert args.on_error == "abort"

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--shard-timeout", "0"],
            ["campaign", "--shard-timeout", "-1.5"],
            ["campaign", "--shard-timeout", "soon"],
            ["campaign", "--max-retries", "-1"],
            ["campaign", "--max-retries", "many"],
            ["campaign", "--on-error", "explode"],
        ],
    )
    def test_bad_resilience_values_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert argv[1] in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["campaign", "study"])
    def test_obs_flags_parse_with_defaults(self, command):
        args = build_parser().parse_args([command])
        assert args.trace is None
        assert args.metrics is None
        assert args.progress is False
        args = build_parser().parse_args(
            [command, "--trace", "t.json", "--metrics", "m.prom",
             "--progress"]
        )
        assert args.trace == "t.json"
        assert args.metrics == "m.prom"
        assert args.progress is True


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.listen == ("127.0.0.1", 8100)
        assert args.state_dir == ".repro-service"
        assert args.resume is False
        assert args.max_queued == 16
        assert args.max_body_bytes == 1024 * 1024
        assert args.io_timeout == 30.0
        assert args.sse_interval == 0.25

    def test_serve_listen_parses_host_port(self):
        args = build_parser().parse_args(["serve", "--listen", "0.0.0.0:0"])
        assert args.listen == ("0.0.0.0", 0)


class TestLeaseHeartbeatValidation:
    """A heartbeat interval at or past the lease duration means every
    lease expires between renewals — rejected at argument-parse time."""

    @pytest.mark.parametrize(
        "heartbeat, lease",
        [("5", "5"), ("6", "5"), ("10.0", "2.5")],
    )
    def test_heartbeat_not_shorter_than_lease_is_a_usage_error(
        self, heartbeat, lease, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "campaign", "--heartbeat-interval", heartbeat,
                "--lease-seconds", lease,
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--heartbeat-interval" in err
        assert "must be shorter than" in err

    def test_valid_pair_reaches_the_handler(self, tmp_path, monkeypatch):
        # A conforming pair parses straight through: the command runs a
        # real (local, serial) campaign and exits 0.
        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "--rows", "2", "--cols", "2", "--size", "2",
            "--heartbeat-interval", "1", "--lease-seconds", "5",
        ])
        assert code == 0


class TestCampaignCommand:
    def test_gemm_campaign_summary(self, capsys):
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "--dataflow", "WS"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "single-column" in out
        assert "experiments : 16" in out

    def test_conv_campaign(self, capsys):
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--op", "conv",
             "--size", "6", "--kernel", "3,3,2,3", "--sites", "diagonal"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "single-channel" in out

    def test_bad_kernel_is_an_error(self, capsys):
        code = main(
            ["campaign", "--op", "conv", "--kernel", "nonsense",
             "--rows", "4", "--cols", "4", "--size", "6"]
        )
        assert code == 2
        assert "R,S,C,K" in capsys.readouterr().err

    def test_json_and_dict_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        dict_path = tmp_path / "dict.json"
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "--json", str(json_path), "--dict", str(dict_path)]
        )
        assert code == 0
        assert json.loads(json_path.read_text())["mesh"] == {"rows": 4, "cols": 4}
        assert len(json.loads(dict_path.read_text())["sites"]) == 16

    def test_random_sites(self, capsys):
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "--sites", "random", "--num-random", "5"]
        )
        assert code == 0
        assert "experiments : 5" in capsys.readouterr().out

    def test_parallel_smoke_matches_serial(self, capsys):
        """`repro-fi campaign -j 2` on a 4x4 array, byte-identical summary."""
        argv = ["campaign", "--rows", "4", "--cols", "4", "--size", "4"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["-j", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "experiments : 16" in parallel_out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        argv = ["campaign", "--rows", "4", "--cols", "4", "--size", "4"]
        assert main(argv + ["-j", "2", "--checkpoint", str(path)]) == 0
        full_out = capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 16  # header + one record per MAC
        path.write_text("\n".join(lines[:9]) + "\n")  # killed mid-shard
        assert main(argv + ["-j", "2", "--resume", str(path)]) == 0
        assert capsys.readouterr().out == full_out
        assert len(path.read_text().splitlines()) == 1 + 16

    def test_torn_checkpoint_header_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        path.write_text('{"kind": "campaign-ch')  # crashed mid-header
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "-j", "2", "--checkpoint", str(path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "header" in err
        assert str(path) in err

    def test_resilience_knobs_reach_the_executor(self, capsys):
        """The flags don't change a healthy campaign's output, only its
        failure policy; a smoke run proves they thread through."""
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "-j", "2", "--shard-timeout", "120", "--max-retries", "1",
             "--on-error", "abort"]
        )
        assert code == 0
        assert "experiments : 16" in capsys.readouterr().out

    def test_resume_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "--resume", str(tmp_path / "absent.jsonl")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_obs_artifacts_written_serial(self, tmp_path, capsys):
        from repro.obs import parse_prometheus, validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "--trace", str(trace_path), "--metrics", str(metrics_path),
             "--progress"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
        samples = parse_prometheus(metrics_path.read_text())
        assert samples["repro_sites_completed_total"] == 16.0
        assert "telemetry" in captured.out
        assert "16/16 (100.0%)" in captured.err  # the progress line

    def test_obs_artifacts_written_parallel(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "-j", "2", "--trace", str(trace_path)]
        )
        assert code == 0
        data = json.loads(trace_path.read_text())
        assert validate_chrome_trace(data) == []
        names = {event["name"] for event in data["traceEvents"]}
        assert "shard.run" in names  # worker-side spans made it across

    def test_metrics_json_suffix_writes_snapshot(self, tmp_path, capsys):
        from repro.core.serialize import load_metrics

        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["campaign", "--rows", "4", "--cols", "4", "--size", "4",
             "--metrics", str(metrics_path)]
        )
        assert code == 0
        restored = load_metrics(metrics_path)
        assert restored.value("repro_sites_completed_total") == 16.0

    def test_obs_flags_do_not_change_the_summary_body(self, capsys):
        # Identical summary modulo the telemetry lines and artifact notes.
        argv = ["campaign", "--rows", "4", "--cols", "4", "--size", "4"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--progress"]) == 0
        observed = capsys.readouterr().out
        stripped = "\n".join(
            line for line in observed.splitlines()
            if "telemetry" not in line and "retries" not in line
        )
        assert stripped.strip() == plain.strip()


class TestPredictCommand:
    def test_prediction_rendering(self, capsys):
        code = main(
            ["predict", "--rows", "4", "--cols", "4", "--m", "8", "--k", "4",
             "--n", "8", "--dataflow", "WS", "--row", "0", "--col", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "single-column multi-tile" in out
        assert "#" in out  # the support rendering

    def test_large_output_skips_rendering(self, capsys):
        code = main(
            ["predict", "--m", "112", "--k", "112", "--n", "112",
             "--row", "5", "--col", "9"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupted cells: 784" in out
        assert "#" not in out


class TestStudyCommand:
    def test_fast_study(self, capsys):
        code = main(["study", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "single-element" in out
        assert "all match analytical prediction : True" in out

    def test_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["study", "--fast", "--markdown", str(path)])
        assert code == 0
        assert path.read_text().startswith("# Paper study report")

    def test_obs_artifacts_cover_the_whole_grid(self, tmp_path, capsys):
        from repro.obs import parse_prometheus, validate_chrome_trace

        trace_path = tmp_path / "study.json"
        metrics_path = tmp_path / "study.prom"
        code = main(
            ["study", "--fast", "--trace", str(trace_path),
             "--metrics", str(metrics_path)]
        )
        assert code == 0
        data = json.loads(trace_path.read_text())
        assert validate_chrome_trace(data) == []
        executes = [
            e for e in data["traceEvents"] if e["name"] == "campaign.execute"
        ]
        assert len(executes) > 1  # one per study configuration
        samples = parse_prometheus(metrics_path.read_text())
        assert samples["repro_sites_completed_total"] > 0


class TestZooCommand:
    def test_lenet_table(self, capsys):
        code = main(["zoo", "lenet5"])
        out = capsys.readouterr().out
        assert code == 0
        for layer in ("conv1", "conv2", "fc1", "fc2", "fc3"):
            assert layer in out
        assert "single-channel" in out

    def test_mesh_and_dataflow_flags(self, capsys):
        code = main(
            ["zoo", "resnet18", "--rows", "8", "--cols", "8",
             "--dataflow", "OS"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8x8 mesh" in out and "OS dataflow" in out

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["zoo", "vgg19"])


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint", str(PACKAGE_ROOT), "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "systolic"
        bad.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").touch()
        (bad / "__init__.py").touch()
        target = bad / "drifty.py"
        target.write_text("__all__ = []\nSCALE = 0.5\n")
        code = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bit-accuracy" in out
        assert "finding(s)" in out

    def test_json_output_parses(self, tmp_path, capsys):
        target = tmp_path / "loose.py"
        target.write_text("def orphan():\n    return 1\n")
        code = main(["lint", str(target), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["count"] == len(payload["findings"]) == 1
        assert payload["findings"][0]["rule"] == "export-hygiene"

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in (
            "bit-accuracy",
            "signal-literal",
            "unseeded-random",
            "export-hygiene",
            "dataclass-contract",
            "worker-global-write",
            "worker-unordered-iter",
            "merge-unordered-iter",
            "worker-wall-clock",
            "worker-entropy",
            "worker-unpicklable",
            "interval-escape",
            "mask-closure",
            "exception-contract",
            "golden-purity",
            "schema-drift",
            "array-dtype-closure",
            "array-broadcast",
            "array-shape-conservation",
            "array-alloc-in-loop",
        ):
            assert rule_id in out
        # Severity and scope columns are present, and output is sorted.
        assert "severity" in out and "scope" in out
        assert "whole-program" in out
        ids = [
            line.split()[0]
            for line in out.splitlines()[2:]
            if line.strip()
        ]
        assert ids == sorted(ids)

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "nope")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_sarif_output_parses(self, tmp_path, capsys):
        target = tmp_path / "loose.py"
        target.write_text("def orphan():\n    return 1\n")
        code = main(["lint", str(target), "--format", "sarif", "--no-cache"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results[0]["ruleId"] == "export-hygiene"
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[results[0]["ruleIndex"]]["id"] == "export-hygiene"

    def test_graph_dump_to_stdout(self, capsys):
        code = main(["lint", str(PACKAGE_ROOT), "--graph-dump", "-"])
        dump = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "functions" in dump and "modules" in dump

    def test_graph_dump_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "graph.json"
        code = main(
            ["lint", str(PACKAGE_ROOT), "--graph-dump", str(out_path)]
        )
        assert code == 0
        assert "graph written" in capsys.readouterr().out
        assert "functions" in json.loads(out_path.read_text())

    def test_baseline_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "loose.py"
        target.write_text("def orphan():\n    return 1\n")
        baseline = tmp_path / "baseline.json"
        code = main(
            ["lint", str(target), "--no-cache",
             "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert "baseline of 1 finding(s)" in capsys.readouterr().out
        # Masked by the baseline on the next run.
        code = main(
            ["lint", str(target), "--no-cache", "--baseline", str(baseline)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "no findings" in captured.out
        # Fixing the violation makes the entry dangling, reported as a note.
        target.write_text("__all__ = []\n")
        code = main(
            ["lint", str(target), "--no-cache", "--baseline", str(baseline)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "no longer matches" in captured.err

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        target = tmp_path / "loose.py"
        target.write_text("__all__ = []\n")
        code = main(["lint", str(target), "--no-cache", "--update-baseline"])
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_cache_path_flag_writes_cache(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("__all__ = []\n")
        cache = tmp_path / "cache.json"
        code = main(["lint", str(target), "--cache-path", str(cache)])
        assert code == 0
        assert cache.exists()

    def test_jobs_flag_matches_serial_run(self, tmp_path, capsys):
        # Two files with one violation each: -j 2 must report exactly
        # what a serial run reports, in the same order.
        for stem in ("alpha", "beta"):
            (tmp_path / f"{stem}.py").write_text(
                "def orphan():\n    return 1\n"
            )
        code = main(["lint", str(tmp_path), "--no-cache"])
        serial_out = capsys.readouterr().out
        assert code == 1
        code = main(["lint", str(tmp_path), "--no-cache", "-j", "2"])
        parallel_out = capsys.readouterr().out
        assert code == 1
        assert parallel_out == serial_out

    def test_jobs_flag_rejects_zero(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "src/repro", "-j", "0"])

    def test_fail_on_new_needs_committed_baseline(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("__all__ = []\n")
        cwd = os.getcwd()
        os.chdir(tmp_path)  # no lint-baseline.json here
        try:
            code = main(["lint", str(target), "--no-cache", "--fail-on", "new"])
        finally:
            os.chdir(cwd)
        assert code == 2
        assert "lint-baseline.json" in capsys.readouterr().err

    def test_fail_on_new_gates_only_new_findings(self, tmp_path, capsys):
        target = tmp_path / "loose.py"
        target.write_text("def orphan():\n    return 1\n")
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            # Freeze the pre-existing finding into the default baseline...
            code = main(
                ["lint", str(target), "--no-cache",
                 "--fail-on", "new", "--update-baseline"]
            )
            assert code == 0
            assert (tmp_path / "lint-baseline.json").is_file()
            # ...after which the run passes: nothing is new.
            code = main(
                ["lint", str(target), "--no-cache", "--fail-on", "new"]
            )
            captured = capsys.readouterr()
            assert code == 0
            assert "no findings" in captured.out
            # A second, new violation still fails the run.
            target.write_text(
                "def orphan():\n    return 1\n\ndef stray():\n    return 2\n"
            )
            code = main(
                ["lint", str(target), "--no-cache", "--fail-on", "new"]
            )
            captured = capsys.readouterr()
        finally:
            os.chdir(cwd)
        assert code == 1
        assert "export-hygiene" in captured.out


class TestLintRuleSelection:
    """``--select`` / ``--skip`` rule subsets."""

    @staticmethod
    def _seeded_kernel(tmp_path):
        # One implicit-dtype violation (array-dtype-closure) and one
        # export-hygiene violation (no __all__) in a scoped module.
        pkg = tmp_path / "repro" / "systolic"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").touch()
        (pkg / "__init__.py").write_text("__all__ = []\n")
        target = pkg / "seeded.py"
        target.write_text(
            "import numpy as np\n"
            "def kernel(n: int):\n"
            "    return np.arange(n)\n"
        )
        return target

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        self._seeded_kernel(tmp_path)
        code = main(
            ["lint", str(tmp_path), "--select", "array-dtype-closure"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "array-dtype-closure" in out
        assert "export-hygiene" not in out
        assert "1 finding(s)" in out

    def test_skip_removes_named_rules(self, tmp_path, capsys):
        self._seeded_kernel(tmp_path)
        code = main(
            ["lint", str(tmp_path), "--skip",
             "array-dtype-closure,export-hygiene"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out

    def test_select_and_skip_compose(self, tmp_path, capsys):
        self._seeded_kernel(tmp_path)
        code = main(
            ["lint", str(tmp_path),
             "--select", "array-dtype-closure,export-hygiene",
             "--skip", "array-dtype-closure"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "export-hygiene" in out
        assert "array-dtype-closure" not in out

    def test_unknown_rule_id_rejected_with_known_list(
        self, tmp_path, capsys
    ):
        self._seeded_kernel(tmp_path)
        code = main(["lint", str(tmp_path), "--select", "no-such-rule"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown rule id(s): no-such-rule" in err
        # The sorted known-id list rides along for discoverability.
        assert "array-alloc-in-loop, array-broadcast" in err
        assert "worker-wall-clock" in err

    def test_unknown_skip_id_rejected(self, tmp_path, capsys):
        self._seeded_kernel(tmp_path)
        code = main(["lint", str(tmp_path), "--skip", "bogus-rule"])
        assert code == 2
        assert "bogus-rule" in capsys.readouterr().err


class TestAtlasAndStatespace:
    def test_atlas_lists_all_gemm_classes(self, capsys):
        assert main(["atlas"]) == 0
        out = capsys.readouterr().out
        for name in (
            "single-element",
            "single-element multi-tile",
            "single-column",
            "single-column multi-tile",
            "single-row",
            "single-row multi-tile",
        ):
            assert f"--- {name} " in out

    def test_statespace(self, capsys):
        assert main(["statespace"]) == 0
        assert "131072" in capsys.readouterr().out
