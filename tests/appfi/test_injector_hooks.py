"""Unit tests for the application-level injector and the model hooks."""

import numpy as np
import pytest

from repro.appfi.hooks import attach_permanent_fault, detach_faults
from repro.appfi.injector import AppLevelInjector
from repro.core.classifier import PatternClass
from repro.faults.sites import FaultSite
from repro.nn import build_dense_classifier, make_digits
from repro.ops.im2col import ConvGeometry
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


class TestInjectGemm:
    def test_fixed_site_corrupts_column(self):
        injector = AppLevelInjector(MESH, Dataflow.WEIGHT_STATIONARY, bit=10)
        output = np.zeros((4, 4), dtype=np.int64)
        corrupted = injector.inject_gemm(output, k=4, site=FaultSite(0, 2))
        assert np.all(corrupted[:, 2] == 1024)
        assert np.all(corrupted[:, [0, 1, 3]] == 0)

    def test_random_site_recorded(self):
        injector = AppLevelInjector(MESH, seed=42)
        injector.inject_gemm(np.zeros((4, 4), dtype=np.int64), k=4)
        record = injector.last
        assert 0 <= record.site.row < 4
        assert record.pattern.pattern_class in (
            PatternClass.SINGLE_COLUMN,
            PatternClass.MASKED,
        )

    def test_history_accumulates(self):
        injector = AppLevelInjector(MESH)
        for _ in range(3):
            injector.inject_gemm(np.zeros((4, 4), dtype=np.int64), k=4)
        assert len(injector.history) == 3

    def test_non_2d_rejected(self):
        injector = AppLevelInjector(MESH)
        with pytest.raises(ValueError):
            injector.inject_gemm(np.zeros((2, 2, 2)), k=2)

    def test_last_requires_history(self):
        with pytest.raises(RuntimeError):
            _ = AppLevelInjector(MESH).last


class TestInjectConv:
    def test_channel_corruption(self):
        g = ConvGeometry(n=1, c=1, h=5, w=5, k=3, r=2, s=2)
        injector = AppLevelInjector(MESH, bit=8)
        output = np.zeros((1, 3, 4, 4), dtype=np.int64)
        corrupted = injector.inject_conv(output, g, site=FaultSite(1, 1))
        assert np.all(corrupted[0, 1] == 256)
        assert np.all(corrupted[0, [0, 2]] == 0)
        assert injector.last.cells_corrupted == 16

    def test_geometry_shape_checked(self):
        g = ConvGeometry(n=1, c=1, h=5, w=5, k=3, r=2, s=2)
        injector = AppLevelInjector(MESH)
        with pytest.raises(ValueError):
            injector.inject_conv(np.zeros((1, 2, 4, 4)), g)


class TestModelHooks:
    def test_attach_degrades_and_detach_restores(self):
        x, y = make_digits(120, noise=0.03, seed=9)
        model = build_dense_classifier()
        baseline = model.evaluate(x, y)
        assert baseline > 0.8

        injector = attach_permanent_fault(
            model, MeshConfig(16, 16), FaultSite(0, 3), bit=28
        )
        degraded = model.evaluate(x, y)
        assert degraded < baseline
        assert injector.history  # every Dense call was corrupted

        detach_faults(model)
        assert model.evaluate(x, y) == baseline

    def test_every_compute_op_is_corrupted(self):
        x, y = make_digits(10, noise=0.0, seed=1)
        model = build_dense_classifier()
        injector = attach_permanent_fault(
            model, MeshConfig(16, 16), FaultSite(2, 2), bit=28
        )
        model.predict(x)
        # One Dense layer, one batch: exactly one injection record.
        assert len(injector.history) == 1
        assert injector.history[0].site == FaultSite(2, 2)
