"""Unit tests for on-the-fly pattern derivation (the HardwareModel)."""

import numpy as np
import pytest

from repro.appfi.runtime_patterns import HardwareModel
from repro.core.classifier import PatternClass
from repro.faults.sites import FaultSite
from repro.ops.im2col import ConvGeometry
from repro.systolic import Dataflow, MeshConfig


class TestDerivation:
    def test_ws_gemm_column(self):
        model = HardwareModel(MeshConfig(4, 4), Dataflow.WEIGHT_STATIONARY)
        derived = model.derive_gemm(4, 4, 4, FaultSite(0, 2))
        assert derived.pattern_class is PatternClass.SINGLE_COLUMN
        assert derived.gemm_support[:, 2].all()

    def test_os_gemm_element(self):
        model = HardwareModel(MeshConfig(4, 4), Dataflow.OUTPUT_STATIONARY)
        derived = model.derive_gemm(4, 4, 4, FaultSite(1, 3))
        assert derived.pattern_class is PatternClass.SINGLE_ELEMENT

    def test_conv_channels(self):
        g = ConvGeometry(n=1, c=2, h=6, w=6, k=6, r=3, s=3)
        model = HardwareModel(MeshConfig(4, 4), Dataflow.WEIGHT_STATIONARY)
        derived = model.derive_conv(g, FaultSite(0, 1))
        assert derived.pattern_class is PatternClass.MULTI_CHANNEL
        support = derived.conv_support()
        assert support.shape == (1, 6, 4, 4)
        assert support[:, 1].all() and support[:, 5].all()

    def test_conv_support_requires_geometry(self):
        model = HardwareModel(MeshConfig(4, 4), Dataflow.WEIGHT_STATIONARY)
        derived = model.derive_gemm(4, 4, 4, FaultSite(0, 0))
        with pytest.raises(ValueError):
            derived.conv_support()

    def test_large_mesh_is_cheap(self):
        """The paper's scalability argument: 128x128 needs no synthesis."""
        model = HardwareModel(MeshConfig(128, 128), Dataflow.WEIGHT_STATIONARY)
        derived = model.derive_gemm(256, 256, 256, FaultSite(100, 77))
        assert derived.pattern_class is PatternClass.SINGLE_COLUMN_MULTI_TILE
        assert derived.gemm_support[:, 77].all()
        assert derived.gemm_support[:, 205].all()

    def test_random_site_within_mesh(self):
        model = HardwareModel(MeshConfig(8, 8), Dataflow.WEIGHT_STATIONARY)
        rng = np.random.default_rng(0)
        for _ in range(20):
            site = model.random_site(rng)
            assert 0 <= site.row < 8 and 0 <= site.col < 8


class TestCorruption:
    def test_stuck1_sets_bit_on_support_only(self):
        tensor = np.zeros((3, 3), dtype=np.int64)
        support = np.zeros((3, 3), dtype=bool)
        support[:, 1] = True
        out = HardwareModel.corrupt(tensor, support, bit=4, mode="stuck1")
        assert np.all(out[:, 1] == 16)
        assert np.all(out[:, [0, 2]] == 0)
        assert np.all(tensor == 0)  # input untouched

    def test_stuck0_clears_bit(self):
        tensor = np.full((2, 2), 16, dtype=np.int64)
        support = np.ones((2, 2), dtype=bool)
        out = HardwareModel.corrupt(tensor, support, bit=4, mode="stuck0")
        assert np.all(out == 0)

    def test_flip_inverts(self):
        tensor = np.array([[0, 16]], dtype=np.int64)
        support = np.ones((1, 2), dtype=bool)
        out = HardwareModel.corrupt(tensor, support, bit=4, mode="flip")
        assert out.tolist() == [[16, 0]]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            HardwareModel.corrupt(
                np.zeros((1, 1)), np.ones((1, 1), bool), bit=0, mode="zap"
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HardwareModel.corrupt(
                np.zeros((2, 2)), np.ones((1, 1), bool), bit=0
            )

    def test_works_on_4d_tensors(self):
        tensor = np.zeros((1, 2, 2, 2), dtype=np.int64)
        support = np.zeros((1, 2, 2, 2), dtype=bool)
        support[0, 1] = True
        out = HardwareModel.corrupt(tensor, support, bit=3, mode="stuck1")
        assert np.all(out[0, 1] == 8)
        assert np.all(out[0, 0] == 0)
