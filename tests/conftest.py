"""Shared fixtures for the test suite.

Small meshes keep the cycle-accurate tests fast while exercising every
structural case (square/rectangular, tiled/untiled); the paper-sized 16x16
mesh is reserved for the integration tests that reproduce the published
claims directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultSite, StuckAtFault
from repro.systolic import MeshConfig


@pytest.fixture
def mesh4() -> MeshConfig:
    """A 4x4 mesh — the default unit-test substrate."""
    return MeshConfig(rows=4, cols=4)


@pytest.fixture
def mesh6() -> MeshConfig:
    """A 6x6 mesh for tests needing a bit more room."""
    return MeshConfig(rows=6, cols=6)


@pytest.fixture
def mesh_rect() -> MeshConfig:
    """A rectangular 3x5 mesh to catch rows/cols mix-ups."""
    return MeshConfig(rows=3, cols=5)


@pytest.fixture
def mesh16() -> MeshConfig:
    """The paper's 16x16 configuration."""
    return MeshConfig.paper()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG shared by randomised (non-hypothesis) tests."""
    return np.random.default_rng(20230628)


def stuck_at(row: int, col: int, signal: str = "sum", bit: int = 20,
             value: int = 1) -> FaultInjector:
    """Convenience SSF injector used across test modules."""
    return FaultInjector.single_stuck_at(
        FaultSite(row=row, col=col, signal=signal, bit=bit), value
    )
