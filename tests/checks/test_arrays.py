"""The array shape/dtype pass: lattice algebra and the four rules.

Each rule gets the acceptance-bar seeded-violation test — one module,
exactly one finding, at the expected line — plus targeted coverage of
the abstract domain (join, broadcast, reshape conservation, ⊤
propagation) and of the numpy surface model the interpreter implements.
"""

import pytest

from repro.checks.arrays import (
    ARRAY_RULES,
    ArrayValue,
    DT_BOOL,
    DT_DEFAULT_INT,
    DT_FLOAT64,
    DT_INT32,
    DT_INT64,
    ScalarValue,
    SymDim,
    TOP_VALUE,
    broadcast_shapes,
    join_dims,
    join_values,
    promote_dtypes,
    reshape_conserves,
)
from repro.checks.engine import run_project_checks

M = SymDim("m")
N = SymDim("n")


def _findings(tmp_path, rule=None):
    found = run_project_checks([tmp_path], rules=ARRAY_RULES)
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


# ----------------------------------------------------------------------
# Lattice algebra
# ----------------------------------------------------------------------


class TestDimLattice:
    def test_join_equal_literals(self):
        assert join_dims(3, 3) == 3

    def test_join_unequal_literals_is_top(self):
        assert join_dims(3, 4) is None

    def test_join_same_symbol(self):
        assert join_dims(M, SymDim("m")) == M

    def test_join_distinct_symbols_is_top(self):
        assert join_dims(M, N) is None

    def test_top_absorbs(self):
        assert join_dims(None, 3) is None
        assert join_dims(M, None) is None


class TestDtypePromotion:
    @pytest.mark.parametrize(
        ("left", "right", "expected"),
        [
            (DT_BOOL, DT_INT64, DT_INT64),
            (DT_INT32, DT_INT64, DT_INT64),
            (DT_INT64, DT_FLOAT64, DT_FLOAT64),
            (DT_BOOL, DT_BOOL, DT_BOOL),
            (DT_DEFAULT_INT, DT_INT32, DT_DEFAULT_INT),
        ],
    )
    def test_promotion_follows_rank(self, left, right, expected):
        assert promote_dtypes(left, right) == expected
        assert promote_dtypes(right, left) == expected

    def test_top_absorbs(self):
        assert promote_dtypes(None, DT_INT64) is None
        assert promote_dtypes(DT_BOOL, None) is None


class TestBroadcast:
    def test_unit_axes_broadcast(self):
        shape, conflicts = broadcast_shapes((M, 1), (1, N))
        assert shape == (M, N)
        assert conflicts == []

    def test_rank_padding(self):
        shape, conflicts = broadcast_shapes((M, N), (N,))
        assert shape == (M, N)
        assert conflicts == []

    def test_known_unequal_dims_conflict(self):
        shape, conflicts = broadcast_shapes((M, 3), (M, 4))
        assert len(conflicts) == 1
        axis, left, right = conflicts[0]
        assert (axis, left, right) == (1, 3, 4)

    def test_distinct_symbols_conflict(self):
        # Two *different* minted symbols are known-distinct sources; the
        # alignment is refutable unless one side is provably 1.
        _, conflicts = broadcast_shapes((M,), (N,))
        assert len(conflicts) == 1

    def test_top_dim_never_conflicts(self):
        shape, conflicts = broadcast_shapes((None, 3), (5, 3))
        assert conflicts == []
        assert shape == (None, 3)

    def test_unknown_rank_never_conflicts(self):
        shape, conflicts = broadcast_shapes(None, (3, 4))
        assert shape is None
        assert conflicts == []


class TestReshapeConservation:
    def test_provably_equal(self):
        assert reshape_conserves((4, 6), (3, 8)) is True
        assert reshape_conserves((M, 6), (6, M)) is True

    def test_provably_different(self):
        assert reshape_conserves((4, 6), (5, 5)) is False
        assert reshape_conserves((M, 6), (M, 7)) is False

    def test_undecidable_is_none(self):
        assert reshape_conserves((M, 6), (N, 6)) is None
        assert reshape_conserves((None, 2), (4,)) is None
        assert reshape_conserves(None, (4,)) is None


class TestValueJoin:
    def test_array_join_keeps_agreement(self):
        left = ArrayValue(shape=(M, 3), dtype=DT_INT64)
        right = ArrayValue(shape=(M, 4), dtype=DT_INT64)
        joined = join_values(left, right)
        assert joined == ArrayValue(shape=(M, None), dtype=DT_INT64)

    def test_array_join_disagreeing_dtype_is_top_dtype(self):
        left = ArrayValue(shape=(M,), dtype=DT_INT64)
        right = ArrayValue(shape=(M,), dtype=DT_FLOAT64)
        assert join_values(left, right).dtype is None

    def test_mixed_kinds_join_to_top(self):
        assert join_values(ArrayValue(None, None), ScalarValue()) is TOP_VALUE

    def test_top_absorbs(self):
        assert join_values(TOP_VALUE, TOP_VALUE) is TOP_VALUE


# ----------------------------------------------------------------------
# Seeded violations: one module per rule, one finding, exact line
# ----------------------------------------------------------------------


class TestSeededViolations:
    def test_dtype_closure_bare_arange(self, write_module, tmp_path):
        # The acceptance-bar kernel: a deliberately implicit-dtype index
        # vector on the datapath.
        path = write_module(
            "repro.systolic.badkernel",
            """
            import numpy as np

            def kernel(n: int):
                idx = np.arange(n)
                return idx
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "array-dtype-closure"
        assert finding.path == str(path)
        assert finding.line == 5
        assert "platform-default int" in finding.message

    def test_broadcast_known_conflict(self, write_module, tmp_path):
        path = write_module(
            "repro.engines.analytic.badcast",
            """
            import numpy as np

            def kernel():
                b = np.zeros((8, 3), dtype=np.int64)
                c = np.zeros((8, 4), dtype=np.int64)
                return b + c
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "array-broadcast"
        assert finding.path == str(path)
        assert finding.line == 7
        assert "3 vs 4" in finding.message

    def test_shape_conservation_bad_reshape(self, write_module, tmp_path):
        path = write_module(
            "repro.ops.badreshape",
            """
            import numpy as np

            def kernel():
                x = np.zeros((4, 6), dtype=np.int64)
                return x.reshape(5, 5)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "array-shape-conservation"
        assert finding.path == str(path)
        assert finding.line == 6
        assert "element count" in finding.message

    def test_alloc_in_loop_hoistable(self, write_module, tmp_path):
        path = write_module(
            "repro.systolic.badalloc",
            """
            import numpy as np

            def kernel(sites, m: int):
                total = np.zeros(m, dtype=np.int64)
                for site in sites:
                    buf = np.zeros(m, dtype=np.int64)
                    total = total + buf
                return total
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "array-alloc-in-loop"
        assert finding.path == str(path)
        assert finding.line == 7
        assert "hoist" in finding.message


# ----------------------------------------------------------------------
# Rule semantics beyond the seeded minima
# ----------------------------------------------------------------------


class TestDtypeClosure:
    def test_bool_sum_default_accumulator_fires(self, write_module, tmp_path):
        write_module(
            "repro.engines.analytic.boolsum",
            """
            import numpy as np

            def kernel():
                x = np.zeros((3, 4), dtype=np.int64)
                mask = x != 0
                return mask.sum(axis=0)
            """,
        )
        findings = _findings(tmp_path, "array-dtype-closure")
        assert len(findings) == 1
        assert "bool array" in findings[0].message

    def test_bool_sum_with_accumulator_dtype_is_clean(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.engines.analytic.boolsum_ok",
            """
            import numpy as np

            def kernel():
                x = np.zeros((3, 4), dtype=np.int64)
                mask = x != 0
                return mask.sum(axis=0, dtype=np.int64)
            """,
        )
        assert _findings(tmp_path) == []

    def test_dtypeless_zeros_fires(self, write_module, tmp_path):
        write_module(
            "repro.systolic.floatzeros",
            """
            import numpy as np

            def kernel():
                return np.zeros((4, 4))
            """,
        )
        findings = _findings(tmp_path, "array-dtype-closure")
        assert len(findings) == 1
        assert "float64" in findings[0].message

    def test_int_list_array_without_dtype_fires(self, write_module, tmp_path):
        write_module(
            "repro.systolic.intlist",
            """
            import numpy as np

            def kernel():
                return np.array([1, 2, 3])
            """,
        )
        findings = _findings(tmp_path, "array-dtype-closure")
        assert len(findings) == 1

    def test_asarray_of_unknown_input_is_clean(self, write_module, tmp_path):
        # asarray passes an existing array's dtype through — requiring a
        # dtype here would force redundant annotations everywhere.
        write_module(
            "repro.systolic.passthrough",
            """
            import numpy as np

            def kernel(values):
                return np.asarray(values)
            """,
        )
        assert _findings(tmp_path) == []

    def test_downcasting_store_fires(self, write_module, tmp_path):
        write_module(
            "repro.engines.analytic.downcast",
            """
            import numpy as np

            def kernel():
                dest = np.zeros((4,), dtype=np.int32)
                src = np.ones((4,), dtype=np.int64)
                dest[:] = src
                return dest
            """,
        )
        findings = _findings(tmp_path, "array-dtype-closure")
        assert len(findings) == 1
        assert "downcast" in findings[0].message

    def test_suppression_comment_silences(self, write_module, tmp_path):
        write_module(
            "repro.systolic.hushed",
            """
            import numpy as np

            def kernel(n: int):
                return np.arange(n)  # repro: ignore[array-dtype-closure]
            """,
        )
        assert _findings(tmp_path) == []


class TestBroadcastRule:
    def test_where_branch_conflict_fires(self, write_module, tmp_path):
        write_module(
            "repro.engines.analytic.badwhere",
            """
            import numpy as np

            def kernel():
                live = np.zeros((6,), dtype=np.int64) != 0
                a = np.zeros((6, 2), dtype=np.int64)
                b = np.zeros((6, 3), dtype=np.int64)
                return np.where(live[:, None], a, b)
            """,
        )
        findings = _findings(tmp_path, "array-broadcast")
        assert len(findings) == 1
        assert "np.where" in findings[0].message

    def test_matmul_contraction_mismatch_fires(self, write_module, tmp_path):
        write_module(
            "repro.ops.badmatmul",
            """
            import numpy as np

            def kernel():
                a = np.zeros((3, 4), dtype=np.int64)
                b = np.zeros((5, 6), dtype=np.int64)
                return a @ b
            """,
        )
        findings = _findings(tmp_path, "array-broadcast")
        assert len(findings) == 1
        assert "contraction" in findings[0].message

    def test_shape_symbols_relate_across_names(self, write_module, tmp_path):
        # ``m, k = a.shape`` refines ``a`` itself, so a later zeros((m, k))
        # aligns with ``a`` — the core reason dimensions are symbolic.
        write_module(
            "repro.engines.analytic.related",
            """
            import numpy as np

            def kernel(a: np.ndarray):
                m, k = a.shape
                acc = np.zeros((m, k), dtype=np.int64)
                return acc + a
            """,
        )
        assert _findings(tmp_path) == []

    def test_outer_product_via_unit_axes_is_clean(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.engines.analytic.outer",
            """
            import numpy as np

            def kernel(a: np.ndarray):
                m, n = a.shape
                r = np.arange(m, dtype=np.int64)
                c = np.arange(n, dtype=np.int64)
                return r[:, None] * c[None, :]
            """,
        )
        assert _findings(tmp_path) == []

    def test_top_shapes_never_fire(self, write_module, tmp_path):
        # Unannotated parameters are ⊤: nothing is provable, so nothing
        # fires — the pass must stay silent rather than guess.
        write_module(
            "repro.systolic.topprop",
            """
            import numpy as np

            def kernel(a, b):
                c = a + b
                d = np.asarray(c) * 3
                return d.reshape(2, 2)
            """,
        )
        assert _findings(tmp_path) == []


class TestShapeConservation:
    def test_transpose_bad_permutation_fires(self, write_module, tmp_path):
        write_module(
            "repro.ops.badtranspose",
            """
            import numpy as np

            def kernel():
                x = np.zeros((3, 4), dtype=np.int64)
                return x.transpose(0, 0)
            """,
        )
        findings = _findings(tmp_path, "array-shape-conservation")
        assert len(findings) == 1
        assert "permutation" in findings[0].message

    def test_concatenate_non_axis_mismatch_fires(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.engines.analytic.badconcat",
            """
            import numpy as np

            def kernel():
                a = np.zeros((3, 4), dtype=np.int64)
                b = np.zeros((3, 5), dtype=np.int64)
                return np.concatenate([a, b], axis=0)
            """,
        )
        findings = _findings(tmp_path, "array-shape-conservation")
        assert len(findings) == 1
        assert "disagree" in findings[0].message

    def test_concatenate_along_axis_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.engines.analytic.goodconcat",
            """
            import numpy as np

            def kernel():
                a = np.zeros((3, 4), dtype=np.int64)
                b = np.zeros((5, 4), dtype=np.int64)
                return np.concatenate([a, b], axis=0)
            """,
        )
        assert _findings(tmp_path) == []

    def test_symbolic_reshape_round_trip_is_clean(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.engines.analytic.roundtrip",
            """
            import numpy as np

            def kernel(a: np.ndarray):
                m, n = a.shape
                flat = a.reshape(m * n)
                return flat
            """,
        )
        # m * n is not a single dim the domain tracks — the reshape is
        # undecidable, which must mean *silent*, not a finding.
        assert _findings(tmp_path) == []

    def test_inferred_minus_one_reshape_is_clean(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.ops.inferred",
            """
            import numpy as np

            def kernel():
                x = np.zeros((4, 6), dtype=np.int64)
                return x.reshape(-1, 3)
            """,
        )
        assert _findings(tmp_path) == []


class TestAllocInLoop:
    def test_loop_variant_allocation_is_clean(self, write_module, tmp_path):
        # The analytic engine's own idiom: the allocation size depends on
        # a name bound by the loop, so it cannot be hoisted.
        write_module(
            "repro.engines.analytic.variant",
            """
            import numpy as np

            def kernel(tiles):
                out = []
                for r in tiles:
                    state = np.zeros(len(r), dtype=np.int64)
                    out.append(state)
                return out
            """,
        )
        assert _findings(tmp_path) == []

    def test_nested_loop_reports_once(self, write_module, tmp_path):
        write_module(
            "repro.systolic.nested",
            """
            import numpy as np

            def kernel(rows, cols, m: int):
                acc = np.zeros(m, dtype=np.int64)
                for r in rows:
                    for c in cols:
                        scratch = np.zeros(m, dtype=np.int64)
                        acc = acc + scratch
                return acc
            """,
        )
        findings = _findings(tmp_path, "array-alloc-in-loop")
        assert len(findings) == 1

    def test_out_of_scope_module_is_ignored(self, write_module, tmp_path):
        # The pass covers the vectorised tier only; analysis helpers may
        # allocate however they like.
        write_module(
            "repro.analysis.free",
            """
            import numpy as np

            def helper(sites, m: int):
                for site in sites:
                    buf = np.zeros(m)
                    yield buf
            """,
        )
        assert _findings(tmp_path) == []
