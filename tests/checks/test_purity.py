"""Golden-purity pass: fault taint into a golden return fires, clean flows don't."""

from repro.checks.engine import run_project_checks
from repro.checks.graph import ProjectGraph
from repro.checks.purity import (
    PURITY_RULES,
    fault_source_classes,
    golden_entries,
)

#: A miniature repro.faults: one descriptor (a source — it has ``apply``)
#: and one inert carrier (no ``apply`` — taint only via held descriptors).
FAULTS = """
    class StuckAt:
        def __init__(self, bit):
            self.bit = bit

        def apply(self, value):
            return value | (1 << self.bit)

    class Injector:
        def __init__(self, fault=None):
            self.fault = fault
"""


def _findings(tmp_path):
    return [
        f
        for f in run_project_checks([tmp_path], rules=PURITY_RULES)
        if f.rule == "golden-purity"
    ]


class TestDiscovery:
    def test_sources_are_apply_bearing_fault_classes(
        self, write_module, tmp_path
    ):
        write_module("repro.faults.mini", FAULTS)
        write_module(
            "repro.core.camp",
            """
            def golden_run(workload):
                return workload
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        sources = fault_source_classes(graph)
        assert any(q.endswith(".StuckAt") for q in sources)
        assert not any(q.endswith(".Injector") for q in sources)
        assert len(golden_entries(graph)) == 1


class TestGoldenPurity:
    def test_fault_leak_into_golden_return_fires_once(
        self, write_module, tmp_path
    ):
        # The seeded violation of the PR acceptance bar: a golden run
        # that builds its reference through a fault-armed injector.
        write_module("repro.faults.mini", FAULTS)
        path = write_module(
            "repro.core.leak",
            """
            from repro.faults.mini import Injector, StuckAt

            def golden_run(workload):
                injector = Injector(StuckAt(bit=20))
                return simulate(workload, injector)

            def simulate(workload, injector):
                return (workload, injector)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == str(path)
        assert finding.line == 6  # the tainted return statement
        assert "golden" in finding.message

    def test_shared_simulator_with_clean_injector_is_clean(
        self, write_module, tmp_path
    ):
        # Golden and faulty paths share simulate(); only the golden one
        # must stay clean — value taint, not reachability.
        write_module("repro.faults.mini", FAULTS)
        write_module(
            "repro.core.shared",
            """
            from repro.faults.mini import Injector, StuckAt

            NO_FAULTS = Injector()

            def golden_run(workload):
                return simulate(workload, NO_FAULTS)

            def run_experiment(workload, bit):
                return simulate(workload, Injector(StuckAt(bit=bit)))

            def simulate(workload, injector):
                return (workload, injector)
            """,
        )
        assert _findings(tmp_path) == []

    def test_interprocedural_leak_through_helper_fires(
        self, write_module, tmp_path
    ):
        write_module("repro.faults.mini", FAULTS)
        write_module(
            "repro.core.indirect",
            """
            from repro.faults.mini import StuckAt

            def default_fault():
                return StuckAt(bit=20)

            def golden_run(workload):
                reference = prepare(workload)
                return reference

            def prepare(workload):
                return (workload, default_fault())
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_suppression_applies(self, write_module, tmp_path):
        write_module("repro.faults.mini", FAULTS)
        write_module(
            "repro.core.hushed",
            """
            from repro.faults.mini import StuckAt

            def golden_run(workload):
                return (workload, StuckAt(bit=0))  # repro: ignore[golden-purity]
            """,
        )
        assert _findings(tmp_path) == []
