"""Shared fixtures for the static-analysis test suite."""

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def write_module(tmp_path):
    """Write a module at a dotted path under a tmp package tree.

    ``write_module("repro.systolic.bad", source)`` creates
    ``tmp/repro/systolic/bad.py`` (with ``__init__.py`` files along the
    way) so that the engine resolves the same dotted module names — and
    therefore the same rule scopes — as the real tree.
    """

    def _write(dotted: str, source: str) -> Path:
        parts = dotted.split(".")
        directory = tmp_path
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            (directory / "__init__.py").touch()
        path = directory / f"{parts[-1]}.py"
        path.write_text(textwrap.dedent(source))
        return path

    return _write
