"""Unit tests for the lint rule engine (module loading, suppressions,
severity plumbing, renderers)."""

import json

import pytest

from repro.checks import (
    Finding,
    Rule,
    Severity,
    iter_python_files,
    load_module,
    module_name,
    render_json,
    render_text,
    run_checks,
)
from repro.checks.rules import BitAccuracyRule


class TestModuleName:
    def test_nested_package(self, write_module):
        path = write_module("repro.systolic.extra", "x = 1\n")
        assert module_name(path) == "repro.systolic.extra"

    def test_package_init(self, write_module):
        path = write_module("pkg.sub.mod", "x = 1\n")
        init = path.parent / "__init__.py"
        assert module_name(init) == "pkg.sub"

    def test_standalone_file(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("x = 1\n")
        assert module_name(path) == "script"


class TestFileCollection:
    def test_directory_recursion_and_dedup(self, write_module, tmp_path):
        write_module("pkg.a", "x = 1\n")
        write_module("pkg.sub.b", "y = 2\n")
        files = list(iter_python_files([tmp_path, tmp_path / "pkg"]))
        names = sorted(p.name for p in files)
        assert names == ["__init__.py", "__init__.py", "a.py", "b.py"]

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        assert [p.name for p in iter_python_files([tmp_path])] == ["real.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_non_python_file_raises(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("hi")
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([path]))


class TestSuppressions:
    def test_bare_ignore_silences_everything(self, write_module):
        path = write_module(
            "repro.systolic.bad", "SCALE = 1.5  # repro: ignore\n"
        )
        assert run_checks([path], rules=[BitAccuracyRule()]) == []

    def test_targeted_ignore_silences_named_rule(self, write_module):
        path = write_module(
            "repro.systolic.bad",
            "SCALE = 1.5  # repro: ignore[bit-accuracy]\n",
        )
        assert run_checks([path], rules=[BitAccuracyRule()]) == []

    def test_wrong_id_does_not_silence(self, write_module):
        path = write_module(
            "repro.systolic.bad",
            "SCALE = 1.5  # repro: ignore[signal-literal]\n",
        )
        findings = run_checks([path], rules=[BitAccuracyRule()])
        assert [f.rule for f in findings] == ["bit-accuracy"]

    def test_comma_separated_ids(self, write_module):
        path = write_module(
            "repro.systolic.bad",
            "SCALE = 1.5  # repro: ignore[signal-literal, bit-accuracy]\n",
        )
        assert run_checks([path], rules=[BitAccuracyRule()]) == []

    def test_suppression_is_per_line(self, write_module):
        path = write_module(
            "repro.systolic.bad",
            """
            A = 1.5  # repro: ignore[bit-accuracy]
            B = 2.5
            """,
        )
        findings = run_checks([path], rules=[BitAccuracyRule()])
        assert len(findings) == 1
        assert findings[0].line == 3


class TestSyntaxErrors:
    def test_unparseable_file_becomes_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = run_checks([path])
        assert len(findings) == 1
        assert findings[0].rule == "syntax-error"
        assert findings[0].severity is Severity.ERROR


class TestScoping:
    def test_scoped_rule_skips_other_packages(self, write_module):
        path = write_module("other.place", "SCALE = 1.5\n")
        assert run_checks([path], rules=[BitAccuracyRule()]) == []

    def test_unscoped_rule_applies_to_unresolvable_modules(self, tmp_path):
        class Everywhere(Rule):
            id = "everywhere"

            def check(self, module):
                yield self.finding(module, None, "hit")

        path = tmp_path / "loose.py"
        path.write_text("x = 1\n")
        findings = run_checks([path], rules=[Everywhere()])
        assert [f.rule for f in findings] == ["everywhere"]


class TestOrderingAndRendering:
    def _findings(self):
        return [
            Finding("b.py", 3, 0, "r", Severity.ERROR, "second"),
            Finding("a.py", 9, 2, "r", Severity.WARNING, "first"),
        ]

    def test_run_checks_sorts_by_location(self, write_module):
        pb = write_module("repro.systolic.zz", "A = 1.5\n")
        pa = write_module("repro.systolic.aa", "B = 2.5\nC = 3.5\n")
        findings = run_checks([pb, pa], rules=[BitAccuracyRule()])
        assert [(f.path, f.line) for f in findings] == [
            (str(pa), 1),
            (str(pa), 2),
            (str(pb), 1),
        ]

    def test_render_text(self):
        text = render_text(self._findings())
        assert "b.py:3:0: error [r] second" in text
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text

    def test_render_text_clean(self):
        assert render_text([]) == "no findings"

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["count"] == 2
        assert payload["findings"][0]["severity"] == "error"
        assert payload["findings"][1]["rule"] == "r"

    def test_load_module_exposes_source_and_tree(self, write_module):
        path = write_module("pkg.mod", "VALUE = 41\n")
        module = load_module(path)
        assert module.name == "pkg.mod"
        assert "VALUE" in module.source
        assert module.tree.body
