"""The interprocedural flow engine: taint fixpoint and exception escape."""

from repro.checks.flow import (
    BOTTOM,
    EscapeAnalysis,
    Fact,
    ForwardTaintAnalysis,
    Param,
    join,
)
from repro.checks.graph import ProjectGraph


def _graph(tmp_path):
    return ProjectGraph.build([tmp_path])


def _qual(graph, suffix):
    matches = [q for q in graph.functions if q.endswith(suffix)]
    assert len(matches) == 1, (suffix, matches)
    return matches[0]


def _class_qual(graph, suffix):
    matches = [q for q in graph.classes if q.endswith(suffix)]
    assert len(matches) == 1, (suffix, matches)
    return matches[0]


class TestLattice:
    def test_join_is_union_with_bottom_identity(self):
        a: Fact = frozenset({"x", Param(0)})
        assert join() == BOTTOM
        assert join(a, BOTTOM) == a
        assert join(a, frozenset({"y"})) == a | {"y"}


class TestTaintSummaries:
    def test_identity_function_summarises_to_its_param(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.ident",
            """
            def ident(x):
                return x

            def second(a, b):
                return b
            """,
        )
        graph = _graph(tmp_path)
        analysis = ForwardTaintAnalysis(graph)
        assert analysis.summary(_qual(graph, ".ident")) == {Param(0)}
        assert analysis.summary(_qual(graph, ".second")) == {Param(1)}

    def test_source_construction_mints_constant_label(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.faults.src",
            """
            class Descriptor:
                def apply(self, value):
                    return value

            def make():
                return Descriptor()

            def launder():
                d = make()
                wrapped = [d]
                return wrapped
            """,
        )
        graph = _graph(tmp_path)
        analysis = ForwardTaintAnalysis(
            graph,
            source_classes=[_class_qual(graph, ".Descriptor")],
            label="fault",
        )
        # The label is constant — present regardless of caller arguments —
        # and survives a container wrap in a transitive caller.
        assert "fault" in analysis.summary(_qual(graph, ".make"))
        assert "fault" in analysis.summary(_qual(graph, ".launder"))

    def test_param_substitution_at_call_sites(self, write_module, tmp_path):
        write_module(
            "repro.core.subst",
            """
            def passthrough(v):
                return v

            def caller(clean, dirty):
                return passthrough(dirty)
            """,
        )
        graph = _graph(tmp_path)
        analysis = ForwardTaintAnalysis(graph)
        # passthrough's Param(0) is replaced by the *call site's* argument
        # fact: caller depends on its own second parameter only.
        assert analysis.summary(_qual(graph, ".caller")) == {Param(1)}

    def test_call_cycle_reaches_a_fixpoint(self, write_module, tmp_path):
        write_module(
            "repro.core.cycle",
            """
            def ping(x):
                return pong(x)

            def pong(x):
                return ping(x)
            """,
        )
        graph = _graph(tmp_path)
        analysis = ForwardTaintAnalysis(graph)  # must terminate
        assert analysis.summary(_qual(graph, ".ping")) <= {Param(0)}

    def test_module_constant_env_proves_clean_injector(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.faults.inj",
            """
            class Descriptor:
                def apply(self, value):
                    return value

            class Injector:
                def __init__(self, descriptor=None):
                    self.descriptor = descriptor

            NO_FAULTS = Injector()
            ARMED = Injector(Descriptor())

            def golden():
                return NO_FAULTS

            def faulty():
                return ARMED
            """,
        )
        graph = _graph(tmp_path)
        analysis = ForwardTaintAnalysis(
            graph,
            source_classes=[_class_qual(graph, ".Descriptor")],
            label="fault",
        )
        # The sanctioned constant stays provably clean; the armed one
        # carries its constructor argument's taint.
        assert "fault" not in analysis.summary(_qual(graph, ".golden"))
        assert "fault" in analysis.summary(_qual(graph, ".faulty"))

    def test_mutating_method_taints_receiver(self, write_module, tmp_path):
        write_module(
            "repro.core.mut",
            """
            def collect(tainted):
                out = []
                out.append(tainted)
                return out
            """,
        )
        graph = _graph(tmp_path)
        analysis = ForwardTaintAnalysis(graph)
        assert Param(0) in analysis.summary(_qual(graph, ".collect"))


class TestEscapeAnalysis:
    def test_raise_escapes_and_propagates_up_call_chain(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.esc",
            """
            def low():
                raise RuntimeError("boom")

            def mid():
                return low()

            def top():
                return mid()
            """,
        )
        graph = _graph(tmp_path)
        analysis = EscapeAnalysis(graph)
        escapes = analysis.escapes(_qual(graph, ".top"))
        assert "RuntimeError" in escapes
        # The origin names the actual raise site, not the call chain.
        assert escapes["RuntimeError"].qualname.endswith(".low")

    def test_enclosing_handler_absorbs_subclasses(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.absorb",
            """
            def read():
                raise FileNotFoundError("gone")

            def guarded():
                try:
                    return read()
                except OSError:
                    return None
            """,
        )
        graph = _graph(tmp_path)
        analysis = EscapeAnalysis(graph)
        # except OSError absorbs FileNotFoundError via the builtin MRO.
        assert analysis.escapes(_qual(graph, ".guarded")) == {}

    def test_reraising_handler_is_transparent(self, write_module, tmp_path):
        write_module(
            "repro.core.reraise",
            """
            def low():
                raise RuntimeError("boom")

            def logged():
                try:
                    return low()
                except RuntimeError:
                    raise
            """,
        )
        graph = _graph(tmp_path)
        analysis = EscapeAnalysis(graph)
        assert "RuntimeError" in analysis.escapes(_qual(graph, ".logged"))

    def test_internal_hierarchy_resolves_to_builtin_mro(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.hier",
            """
            class CampaignError(RuntimeError):
                pass

            class ShardCrash(CampaignError):
                pass

            def crash():
                raise ShardCrash("dead worker")

            def typed_guard():
                try:
                    crash()
                except CampaignError:
                    pass

            def generic_guard():
                try:
                    crash()
                except ValueError:
                    pass
            """,
        )
        graph = _graph(tmp_path)
        analysis = EscapeAnalysis(graph)
        shard = _class_qual(graph, ".ShardCrash")
        assert "RuntimeError" in analysis.ancestors(shard)
        assert analysis.escapes(_qual(graph, ".typed_guard")) == {}
        assert shard in analysis.escapes(_qual(graph, ".generic_guard"))

    def test_handler_body_raises_are_not_protected(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.handler",
            """
            def translate():
                try:
                    risky()
                except ValueError:
                    raise KeyError("translated")

            def risky():
                raise ValueError("bad")
            """,
        )
        graph = _graph(tmp_path)
        analysis = EscapeAnalysis(graph)
        escapes = analysis.escapes(_qual(graph, ".translate"))
        # The except absorbed the ValueError, but the KeyError raised
        # *inside* the handler body escapes freely.
        assert "ValueError" not in escapes
        assert "KeyError" in escapes
