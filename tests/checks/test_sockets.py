"""Socket-discipline rule: every hazard fires, compliant code is clean."""

from repro.checks.engine import run_project_checks
from repro.checks.sockets import SOCKET_RULES


def _findings(tmp_path):
    return [
        f
        for f in run_project_checks([tmp_path], rules=SOCKET_RULES)
        if f.rule == "socket-discipline"
    ]


class TestFabricAsyncSweep:
    def test_unbounded_read_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            async def pump(reader):
                return await reader.readexactly(4)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "readexactly" in findings[0].message
        assert "wait_for" in findings[0].message

    def test_unbounded_drain_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            async def flush(writer):
                writer.write(b"x")
                await writer.drain()
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_unbounded_open_connection_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            import asyncio

            async def dial(host, port):
                return await asyncio.open_connection(host, port)
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_wait_for_wrapped_read_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.good",
            """
            import asyncio

            async def pump(reader, timeout):
                return await asyncio.wait_for(reader.readexactly(4), timeout)
            """,
        )
        assert _findings(tmp_path) == []

    def test_wait_for_none_timeout_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            import asyncio

            async def pump(reader):
                return await asyncio.wait_for(reader.readexactly(4), None)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "without a real timeout" in findings[0].message

    def test_wait_for_missing_timeout_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            import asyncio

            async def pump(reader):
                return await asyncio.wait_for(reader.readexactly(4))
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_outside_fabric_package_not_in_scope(
        self, write_module, tmp_path
    ):
        # The async sweep governs the fabric package only; other async
        # code in the tree is out of its jurisdiction.
        write_module(
            "repro.analysis.streamy",
            """
            async def pump(reader):
                return await reader.readexactly(4)
            """,
        )
        assert _findings(tmp_path) == []

    def test_non_peer_awaits_are_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.good",
            """
            import asyncio

            async def tick(event):
                await asyncio.sleep(0.1)
                await event.wait()
            """,
        )
        assert _findings(tmp_path) == []


class TestWorkerClosureSweep:
    def test_socket_in_shard_closure_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                return phone_home(shard)

            def phone_home(shard):
                conn = socket.create_connection(("10.0.0.1", 9))
                return conn
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "socket.create_connection" in findings[0].message
        assert "worker-reachable" in findings[0].message

    def test_create_connection_with_timeout_still_not_recv(
        self, write_module, tmp_path
    ):
        # An explicit timeout= makes create_connection itself tolerable,
        # but blocking .recv() on the result still fires.
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                conn = socket.create_connection(("10.0.0.1", 9), timeout=5.0)
                return conn.recv(1024)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert ".recv" in findings[0].message

    def test_socket_outside_closure_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                return shard

            def unrelated_probe(host):
                return socket.create_connection((host, 80))
            """,
        )
        assert _findings(tmp_path) == []

    def test_suppression_comment_applies(self, write_module, tmp_path):
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                conn = socket.socket()  # repro: ignore[socket-discipline]
                return conn
            """,
        )
        assert _findings(tmp_path) == []


class TestSelfCompliance:
    def test_shipped_fabric_package_is_clean(self):
        # The rule's own subject matter: the real fabric package must
        # carry zero findings, or the availability story is a lie.
        findings = run_project_checks(["src/repro"], rules=SOCKET_RULES)
        assert findings == []
