"""Socket-discipline rule: every hazard fires, compliant code is clean."""

from repro.checks.engine import run_project_checks
from repro.checks.sockets import SOCKET_RULES


def _findings(tmp_path):
    return [
        f
        for f in run_project_checks([tmp_path], rules=SOCKET_RULES)
        if f.rule == "socket-discipline"
    ]


class TestFabricAsyncSweep:
    def test_unbounded_read_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            async def pump(reader):
                return await reader.readexactly(4)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "readexactly" in findings[0].message
        assert "wait_for" in findings[0].message

    def test_unbounded_drain_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            async def flush(writer):
                writer.write(b"x")
                await writer.drain()
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_unbounded_open_connection_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            import asyncio

            async def dial(host, port):
                return await asyncio.open_connection(host, port)
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_wait_for_wrapped_read_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.good",
            """
            import asyncio

            async def pump(reader, timeout):
                return await asyncio.wait_for(reader.readexactly(4), timeout)
            """,
        )
        assert _findings(tmp_path) == []

    def test_wait_for_none_timeout_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            import asyncio

            async def pump(reader):
                return await asyncio.wait_for(reader.readexactly(4), None)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "without a real timeout" in findings[0].message

    def test_wait_for_missing_timeout_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.bad",
            """
            import asyncio

            async def pump(reader):
                return await asyncio.wait_for(reader.readexactly(4))
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_outside_fabric_package_not_in_scope(
        self, write_module, tmp_path
    ):
        # The async sweep governs the fabric package only; other async
        # code in the tree is out of its jurisdiction.
        write_module(
            "repro.analysis.streamy",
            """
            async def pump(reader):
                return await reader.readexactly(4)
            """,
        )
        assert _findings(tmp_path) == []

    def test_non_peer_awaits_are_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.fabric.good",
            """
            import asyncio

            async def tick(event):
                await asyncio.sleep(0.1)
                await event.wait()
            """,
        )
        assert _findings(tmp_path) == []


class TestServiceAsyncSweep:
    """The async sweep covers ``repro.service`` with the same rules as
    the fabric package — the HTTP front door is peer-facing too."""

    def test_unbounded_read_in_service_fires(self, write_module, tmp_path):
        write_module(
            "repro.service.bad",
            """
            async def pump(reader):
                return await reader.readline()
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "readline" in findings[0].message

    def test_unbounded_drain_in_service_fires(self, write_module, tmp_path):
        write_module(
            "repro.service.bad",
            """
            async def flush(writer):
                writer.write(b"event: progress\\n\\n")
                await writer.drain()
            """,
        )
        assert len(_findings(tmp_path)) == 1

    def test_bounded_service_io_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.service.good",
            """
            import asyncio

            async def pump(reader, timeout):
                return await asyncio.wait_for(reader.readline(), timeout)
            """,
        )
        assert _findings(tmp_path) == []

    def test_job_closure_socket_fires(self, write_module, tmp_path):
        # The job entry is swept like a fabric worker entry: anything
        # reachable from _run_job must not open sockets.
        write_module(
            "repro.service.jobs",
            """
            import socket

            def _run_job(manager, job):
                return phone_home(job)

            def phone_home(job):
                return socket.create_connection(("10.0.0.1", 9))
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "socket.create_connection" in findings[0].message

    def test_socket_free_job_closure_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.service.jobs",
            """
            def _run_job(manager, job):
                return compute(job)

            def compute(job):
                return sum(job)
            """,
        )
        assert _findings(tmp_path) == []


class TestWorkerClosureSweep:
    def test_socket_in_shard_closure_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                return phone_home(shard)

            def phone_home(shard):
                conn = socket.create_connection(("10.0.0.1", 9))
                return conn
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "socket.create_connection" in findings[0].message
        assert "worker-reachable" in findings[0].message

    def test_create_connection_with_timeout_still_not_recv(
        self, write_module, tmp_path
    ):
        # An explicit timeout= makes create_connection itself tolerable,
        # but blocking .recv() on the result still fires.
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                conn = socket.create_connection(("10.0.0.1", 9), timeout=5.0)
                return conn.recv(1024)
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert ".recv" in findings[0].message

    def test_socket_outside_closure_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                return shard

            def unrelated_probe(host):
                return socket.create_connection((host, 80))
            """,
        )
        assert _findings(tmp_path) == []

    def test_suppression_comment_applies(self, write_module, tmp_path):
        write_module(
            "repro.core.pool",
            """
            import socket

            def _run_shard(shard):
                conn = socket.socket()  # repro: ignore[socket-discipline]
                return conn
            """,
        )
        assert _findings(tmp_path) == []


class TestSelfCompliance:
    def test_shipped_networked_packages_are_clean(self):
        # The rule's own subject matter: the real fabric and service
        # packages must carry zero findings, or the availability story
        # is a lie.
        findings = run_project_checks(["src/repro"], rules=SOCKET_RULES)
        assert findings == []

    def test_service_is_in_the_sweep(self):
        from repro.checks.sockets import JOB_ENTRY_QUALNAMES, SWEPT_PACKAGES

        assert "repro.service" in SWEPT_PACKAGES
        assert "repro.service.jobs._run_job" in JOB_ENTRY_QUALNAMES
