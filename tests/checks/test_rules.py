"""Fixture tests for every shipped lint rule: each rule must fire on a
violating snippet and stay silent on a conforming one."""

import pytest

from repro.checks import Severity, get_rule, run_checks
from repro.checks.rules import (
    ALL_RULES,
    BitAccuracyRule,
    DataclassContractRule,
    ExportHygieneRule,
    SignalLiteralRule,
    UnseededRandomRule,
)


def rules_fired(path, rule):
    return [f.rule for f in run_checks([path], rules=[rule])]


class TestBitAccuracy:
    def test_float_literal_fires(self, write_module):
        path = write_module("repro.systolic.bad", "SCALE = 0.5\n")
        assert rules_fired(path, BitAccuracyRule()) == ["bit-accuracy"]

    def test_complex_literal_fires(self, write_module):
        path = write_module("repro.faults.bad", "Z = 1j\n")
        assert rules_fired(path, BitAccuracyRule()) == ["bit-accuracy"]

    def test_true_division_fires(self, write_module):
        path = write_module(
            "repro.systolic.bad",
            """
            def halve(x):
                return x / 2
            """,
        )
        assert rules_fired(path, BitAccuracyRule()) == ["bit-accuracy"]

    def test_aug_division_fires(self, write_module):
        path = write_module(
            "repro.faults.bad",
            """
            def halve(x):
                x /= 2
                return x
            """,
        )
        assert rules_fired(path, BitAccuracyRule()) == ["bit-accuracy"]

    def test_float_cast_fires(self, write_module):
        path = write_module("repro.systolic.bad", "X = float(3)\n")
        assert rules_fired(path, BitAccuracyRule()) == ["bit-accuracy"]

    def test_integer_arithmetic_is_clean(self, write_module):
        path = write_module(
            "repro.systolic.good",
            """
            def mac(a, b, acc):
                '''Docstrings with 1.5 floats are fine.'''
                return acc + (a * b) // 1
            """,
        )
        assert rules_fired(path, BitAccuracyRule()) == []

    def test_out_of_scope_module_is_clean(self, write_module):
        path = write_module("repro.analysis.floaty", "MEAN = 0.25\n")
        assert rules_fired(path, BitAccuracyRule()) == []


class TestSignalLiteral:
    def test_raw_signal_name_fires(self, write_module):
        path = write_module("repro.core.bad", "TARGET = 'a_reg'\n")
        findings = run_checks([path], rules=[SignalLiteralRule()])
        assert [f.rule for f in findings] == ["signal-literal"]
        assert "SIGNAL_A_REG" in findings[0].message

    def test_every_registry_name_is_covered(self, write_module):
        path = write_module(
            "repro.core.bad",
            "NAMES = ('a_reg', 'b_reg', 'product', 'sum')\n",
        )
        assert len(rules_fired(path, SignalLiteralRule())) == 4

    def test_constant_reference_is_clean(self, write_module):
        path = write_module(
            "repro.core.good",
            """
            from repro.faults.sites import SIGNAL_SUM

            TARGET = SIGNAL_SUM
            """,
        )
        assert rules_fired(path, SignalLiteralRule()) == []

    def test_docstring_mentioning_a_signal_is_clean(self, write_module):
        path = write_module(
            "repro.core.good",
            """
            def f():
                'sum'
            """,
        )
        assert rules_fired(path, SignalLiteralRule()) == []

    def test_registry_module_itself_is_exempt(self, write_module):
        path = write_module("repro.faults.sites", "SIGNAL_SUM = 'sum'\n")
        assert rules_fired(path, SignalLiteralRule()) == []

    def test_unrelated_strings_are_clean(self, write_module):
        path = write_module(
            "repro.core.good", "MODE = 'summary'\nKIND = 'register'\n"
        )
        assert rules_fired(path, SignalLiteralRule()) == []


class TestUnseededRandom:
    def test_unseeded_default_rng_fires(self, write_module):
        path = write_module(
            "repro.core.bad",
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == ["unseeded-random"]

    def test_legacy_numpy_global_fires(self, write_module):
        path = write_module(
            "repro.nn.bad",
            """
            import numpy as np

            noise = np.random.rand(3, 3)
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == ["unseeded-random"]

    def test_stdlib_random_module_fires(self, write_module):
        path = write_module(
            "repro.core.bad",
            """
            import random

            x = random.random()
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == ["unseeded-random"]

    def test_stdlib_from_import_fires(self, write_module):
        path = write_module(
            "repro.core.bad",
            """
            from random import randint

            x = randint(0, 7)
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == ["unseeded-random"]

    def test_seeded_generator_is_clean(self, write_module):
        path = write_module(
            "repro.core.good",
            """
            import numpy as np

            def sample(seed=0):
                rng = np.random.default_rng(seed)
                return rng.random(4)
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == []

    def test_seed_keyword_is_clean(self, write_module):
        path = write_module(
            "repro.core.good",
            """
            import numpy as np

            rng = np.random.default_rng(seed=123)
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == []

    def test_sampling_module_is_exempt(self, write_module):
        path = write_module(
            "repro.core.sampling",
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
        )
        assert rules_fired(path, UnseededRandomRule()) == []


class TestExportHygiene:
    def test_public_def_missing_from_all_fires(self, write_module):
        path = write_module(
            "repro.core.bad",
            """
            __all__ = ["visible"]

            def visible():
                return 1

            def leaked():
                return 2
            """,
        )
        findings = run_checks([path], rules=[ExportHygieneRule()])
        assert [f.rule for f in findings] == ["export-hygiene"]
        assert "leaked" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_phantom_all_entry_fires(self, write_module):
        path = write_module(
            "repro.core.bad",
            """
            __all__ = ["ghost"]
            """,
        )
        findings = run_checks([path], rules=[ExportHygieneRule()])
        assert "ghost" in findings[0].message

    def test_missing_all_with_public_names_fires(self, write_module):
        path = write_module(
            "repro.core.bad",
            """
            def exposed():
                return 1
            """,
        )
        findings = run_checks([path], rules=[ExportHygieneRule()])
        assert "no __all__" in findings[0].message

    def test_consistent_module_is_clean(self, write_module):
        path = write_module(
            "repro.core.good",
            """
            from pathlib import Path

            __all__ = ["LIMIT", "helper", "Thing", "Path"]

            LIMIT = 4
            _PRIVATE = 9

            def helper():
                return _PRIVATE

            class Thing:
                pass
            """,
        )
        assert rules_fired(path, ExportHygieneRule()) == []

    def test_empty_module_is_clean(self, write_module):
        path = write_module("repro.core.empty", "")
        assert rules_fired(path, ExportHygieneRule()) == []

    def test_dynamic_all_is_skipped(self, write_module):
        path = write_module(
            "repro.core.dynamic",
            """
            __all__ = [name for name in ("a", "b")]

            def unlisted():
                return 1
            """,
        )
        assert rules_fired(path, ExportHygieneRule()) == []


class TestDataclassContract:
    def test_unfrozen_contract_class_fires(self, write_module):
        path = write_module(
            "repro.systolic.signals",
            """
            from dataclasses import dataclass

            @dataclass
            class SignalEvent:
                cycle: int
            """,
        )
        findings = run_checks([path], rules=[DataclassContractRule()])
        assert [f.rule for f in findings] == ["dataclass-contract"]
        assert "frozen=True" in findings[0].message

    def test_explicit_frozen_false_fires(self, write_module):
        path = write_module(
            "repro.systolic.datatypes",
            """
            from dataclasses import dataclass

            @dataclass(frozen=False)
            class IntType:
                width: int
            """,
        )
        assert rules_fired(path, DataclassContractRule()) == [
            "dataclass-contract"
        ]

    def test_missing_contract_class_fires(self, write_module):
        path = write_module("repro.systolic.signals", "X = 1\n")
        findings = run_checks([path], rules=[DataclassContractRule()])
        assert "no longer defined" in findings[0].message

    def test_frozen_contract_class_is_clean(self, write_module):
        path = write_module(
            "repro.systolic.datatypes",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class IntType:
                width: int
            """,
        )
        assert rules_fired(path, DataclassContractRule()) == []

    def test_registry_dtype_mismatch_fires(self, write_module):
        path = write_module(
            "repro.faults.sites",
            """
            from dataclasses import dataclass

            SIGNAL_A_REG = "a_reg"
            SIGNAL_B_REG = "b_reg"

            MAC_SIGNALS = (SIGNAL_A_REG, SIGNAL_B_REG)

            _SIGNAL_DTYPES = {SIGNAL_A_REG: None}

            @dataclass(frozen=True)
            class FaultSite:
                row: int
            """,
        )
        findings = run_checks([path], rules=[DataclassContractRule()])
        assert len(findings) == 1
        assert "SIGNAL_B_REG" in findings[0].message

    def test_consistent_registry_is_clean(self, write_module):
        path = write_module(
            "repro.faults.sites",
            """
            from dataclasses import dataclass

            SIGNAL_A_REG = "a_reg"

            MAC_SIGNALS = (SIGNAL_A_REG,)

            _SIGNAL_DTYPES = {SIGNAL_A_REG: None}

            @dataclass(frozen=True)
            class FaultSite:
                row: int
            """,
        )
        assert rules_fired(path, DataclassContractRule()) == []

    def test_other_modules_are_out_of_scope(self, write_module):
        path = write_module(
            "repro.core.other",
            """
            from dataclasses import dataclass

            @dataclass
            class FaultSite:
                row: int
            """,
        )
        assert rules_fired(path, DataclassContractRule()) == []


class TestRegistry:
    def test_every_rule_has_id_severity_description(self):
        for rule in ALL_RULES:
            assert rule.id
            assert isinstance(rule.severity, Severity)
            assert rule.description

    def test_rule_ids_are_unique(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))

    def test_get_rule_round_trips(self):
        for rule in ALL_RULES:
            assert get_rule(rule.id) is rule

    def test_get_rule_unknown_id(self):
        with pytest.raises(KeyError):
            get_rule("no-such-rule")
