"""Schema-drift pass: writer/reader codec pairs must agree on fields."""

from repro.checks.engine import run_project_checks
from repro.checks.graph import ProjectGraph
from repro.checks.schema import (
    SCHEMA_RULES,
    schema_pairs,
    writer_fields,
)


def _findings(tmp_path):
    return [
        f
        for f in run_project_checks([tmp_path], rules=SCHEMA_RULES)
        if f.rule == "schema-drift"
    ]


def _info(graph, suffix):
    matches = [i for q, i in graph.functions.items() if q.endswith(suffix)]
    assert len(matches) == 1
    return matches[0]


class TestPairing:
    def test_pairs_by_both_naming_conventions(self, write_module, tmp_path):
        write_module(
            "repro.core.codec",
            """
            def site_record(site):
                return {"row": site.row}

            def site_from_record(record):
                return record["row"]

            def metrics_to_dict(metrics):
                return {"count": metrics.count}

            def metrics_from_dict(record):
                return record["count"]

            def unpaired_record(x):
                return {"a": 1}
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        pairs = {
            (w.name, r.name) for w, r in schema_pairs(graph)
        }
        assert pairs == {
            ("site_record", "site_from_record"),
            ("metrics_to_dict", "metrics_from_dict"),
        }


class TestWriterExtraction:
    def test_nested_literals_and_build_then_return(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.writer",
            """
            def experiment_record(e):
                data = {"site": {"row": e.row, "col": e.col}}
                data["classification"] = {"label": e.label}
                if e.cells:
                    data["cells"] = e.cells
                return data

            def opaque_record(e):
                return e.to_dict()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        fields = writer_fields(_info(graph, ".experiment_record"))
        assert fields == {
            "site", "site.row", "site.col",
            "classification", "classification.label", "cells",
        }
        # An opaque return means the field set is unprovable — the pair
        # opts out instead of guessing.
        assert writer_fields(_info(graph, ".opaque_record")) is None


class TestSchemaDrift:
    def test_reader_requiring_unwritten_field_fires_once(
        self, write_module, tmp_path
    ):
        # The seeded violation of the PR acceptance bar: a reader that
        # requires a field its paired writer never emits.
        path = write_module(
            "repro.core.drift",
            """
            def site_record(site):
                return {"row": site.row, "col": site.col}

            def site_from_record(record):
                return (record["row"], record["col"], record["signal"])
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == str(path)
        assert "'signal'" in finding.message
        assert "site_record" in finding.message

    def test_agreeing_pair_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.agree",
            """
            def site_record(site):
                return {"row": site.row, "col": site.col}

            def site_from_record(record):
                return (record["row"], record["col"])
            """,
        )
        assert _findings(tmp_path) == []

    def test_get_reads_are_optional(self, write_module, tmp_path):
        write_module(
            "repro.core.opt",
            """
            def site_record(site):
                return {"row": site.row}

            def site_from_record(record):
                return (record["row"], record.get("legacy_field"))
            """,
        )
        assert _findings(tmp_path) == []

    def test_alias_subscripts_resolve_to_nested_paths(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.alias",
            """
            def exp_record(e):
                return {"site": {"row": e.row}}

            def exp_from_record(record):
                site = record["site"]
                return (site["row"], site["col"])
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        assert "'site.col'" in findings[0].message

    def test_unprovable_writer_opts_the_pair_out(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.optout",
            """
            def blob_record(blob):
                return blob.to_dict()

            def blob_from_record(record):
                return record["anything"]
            """,
        )
        assert _findings(tmp_path) == []

    def test_suppression_applies(self, write_module, tmp_path):
        write_module(
            "repro.core.hushed",
            """
            def site_record(site):
                return {"row": site.row}

            def site_from_record(record):
                return record["ghost"]  # repro: ignore[schema-drift]
            """,
        )
        assert _findings(tmp_path) == []
