"""Exception-contract pass: generic escapes fire, typed/absorbed do not."""

from repro.checks.contracts import CONTRACT_RULES, contract_entries
from repro.checks.engine import run_project_checks
from repro.checks.graph import ProjectGraph


def _findings(tmp_path):
    return [
        f
        for f in run_project_checks([tmp_path], rules=CONTRACT_RULES)
        if f.rule == "exception-contract"
    ]


class TestEntryDiscovery:
    def test_worker_closure_and_executor_protocol(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.exec",
            """
            def _run_shard(shard):
                pass

            class MyExecutor:
                def execute(self, campaign, sites):
                    pass
            """,
        )
        write_module(
            "repro.analysis.exec",
            """
            def execute(plan):  # outside repro.core: not an entry
                pass
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        entries = contract_entries(graph)
        assert any(e.endswith("exec._run_shard") for e in entries)
        assert any(e.endswith("MyExecutor.execute") for e in entries)
        assert not any(e.startswith("repro.analysis") for e in entries)


class TestExceptionContract:
    def test_generic_raise_on_worker_path_fires_once(
        self, write_module, tmp_path
    ):
        # The seeded violation of the PR acceptance bar: a bare
        # RuntimeError two calls below a worker entry.
        path = write_module(
            "repro.core.bad",
            """
            def _run_shard(shard):
                return step(shard)

            def step(shard):
                return deep(shard)

            def deep(shard):
                raise RuntimeError("anonymous failure")
            """,
        )
        findings = _findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == str(path)
        assert finding.line == 9  # the raise statement
        assert "RuntimeError" in finding.message
        assert "core.bad.deep" in finding.message
        assert "core.bad._run_shard" in finding.message

    def test_typed_taxonomy_raise_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.good",
            """
            class ShardCrash(RuntimeError):
                '''Typed: attribution survives the subclass.'''

            def _run_shard(shard):
                raise ShardCrash(f"shard {shard} died")
            """,
        )
        assert _findings(tmp_path) == []

    def test_specific_builtin_raise_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.valid",
            """
            def _run_shard(shard):
                if shard < 0:
                    raise ValueError("shard index must be >= 0")
                return shard
            """,
        )
        assert _findings(tmp_path) == []

    def test_absorbed_raise_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.caught",
            """
            def _run_shard(shard):
                try:
                    return flaky(shard)
                except RuntimeError:
                    return None

            def flaky(shard):
                raise RuntimeError("retried in-place")
            """,
        )
        assert _findings(tmp_path) == []

    def test_unreachable_raise_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.offpath",
            """
            def _run_shard(shard):
                return shard

            def helper_nobody_calls():
                raise RuntimeError("not on any campaign path")
            """,
        )
        assert _findings(tmp_path) == []

    def test_suppression_applies_at_the_raise_site(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.hushed",
            """
            def _run_shard(shard):
                raise RuntimeError("known debt")  # repro: ignore[exception-contract]
            """,
        )
        assert _findings(tmp_path) == []
