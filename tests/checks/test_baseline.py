"""Baseline files: staged adoption with multiplicity and dangling entries."""

import json

import pytest

from repro.checks.baseline import (
    apply_baseline,
    baseline_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.checks.engine import Finding, Severity


def _finding(path="src/repro/core/x.py", line=1, rule="export-hygiene",
             message="public name 'f' missing from __all__"):
    return Finding(
        path=path,
        line=line,
        col=0,
        rule=rule,
        severity=Severity.WARNING,
        message=message,
    )


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(), _finding(line=9)])
        counts = load_baseline(path)
        # Same (path, rule, message) at two lines -> multiplicity 2.
        assert counts[baseline_fingerprint(_finding())] == 2

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestApply:
    def test_baselined_findings_are_masked(self, tmp_path):
        path = tmp_path / "baseline.json"
        known = _finding()
        write_baseline(path, [known])
        new = _finding(rule="bit-accuracy", message="float literal")
        remaining, dangling = apply_baseline(
            [known, new], load_baseline(path)
        )
        assert remaining == [new]
        assert not dangling

    def test_multiplicity_masks_only_that_many(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding()])
        remaining, _ = apply_baseline(
            [_finding(line=1), _finding(line=9)], load_baseline(path)
        )
        # One baselined occurrence; the second identical finding is new.
        assert len(remaining) == 1

    def test_fixed_findings_become_dangling(self, tmp_path):
        path = tmp_path / "baseline.json"
        fixed = _finding(rule="bit-accuracy", message="float literal")
        write_baseline(path, [_finding(), fixed])
        remaining, dangling = apply_baseline(
            [_finding()], load_baseline(path)
        )
        assert remaining == []
        assert dangling[baseline_fingerprint(fixed)] == 1

    def test_line_number_drift_does_not_invalidate(self, tmp_path):
        # Fingerprints deliberately exclude the line, so pure code motion
        # above a baselined finding does not resurface it.
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(line=10)])
        remaining, dangling = apply_baseline(
            [_finding(line=400)], load_baseline(path)
        )
        assert remaining == []
        assert not dangling
