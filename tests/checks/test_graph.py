"""Project graph: symbol collection, call resolution, reachability."""

import ast

from repro.checks.graph import ProjectGraph, build_graph


class TestSymbolCollection:
    def test_functions_classes_and_methods(self, write_module, tmp_path):
        write_module(
            "repro.core.widget",
            """
            class Widget:
                def spin(self):
                    return 1

            def make():
                return Widget()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        assert "repro.core.widget.make" in graph.functions
        assert "repro.core.widget.Widget" in graph.classes
        assert (
            graph.classes["repro.core.widget.Widget"].methods["spin"]
            == "repro.core.widget.Widget.spin"
        )

    def test_syntax_error_file_skipped(self, write_module, tmp_path):
        write_module("repro.core.good", "def fine(): pass\n")
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.write_text("def broken(:\n")
        graph = ProjectGraph.build([tmp_path])
        assert "repro.core.good.fine" in graph.functions
        assert all("bad" not in q for q in graph.functions)


class TestCallResolution:
    def test_direct_function_call(self, write_module, tmp_path):
        write_module(
            "repro.core.a",
            """
            def helper():
                return 1

            def caller():
                return helper()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        calls = graph.functions["repro.core.a.caller"].calls
        assert any("repro.core.a.helper" in site.targets for site in calls)

    def test_cross_module_import_call(self, write_module, tmp_path):
        write_module("repro.core.util", "def shared(): pass\n")
        write_module(
            "repro.core.user",
            """
            from repro.core.util import shared

            def go():
                shared()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        calls = graph.functions["repro.core.user.go"].calls
        assert any("repro.core.util.shared" in site.targets for site in calls)

    def test_typed_attribute_method_resolution(self, write_module, tmp_path):
        write_module(
            "repro.core.typed",
            """
            class Controller:
                def execute(self):
                    return 1

            class Executor:
                def __init__(self, controller: Controller):
                    self.controller = controller

                def run(self):
                    return self.controller.execute()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        calls = graph.functions["repro.core.typed.Executor.run"].calls
        resolved = [t for site in calls for t in site.targets]
        assert "repro.core.typed.Controller.execute" in resolved
        # Typed resolution must not fall back to "every method named
        # execute" when the receiver's class is known.
        assert all("Executor.execute" not in t for t in resolved)

    def test_external_dotted_call_recorded(self, write_module, tmp_path):
        write_module(
            "repro.core.ext",
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        calls = graph.functions["repro.core.ext.stamp"].calls
        assert any(site.external == "time.perf_counter" for site in calls)


class TestReachability:
    def test_bfs_chain_is_shortest(self, write_module, tmp_path):
        write_module(
            "repro.core.chain",
            """
            def leaf():
                pass

            def mid():
                leaf()

            def entry():
                mid()
                leaf()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        chains = graph.reachable(["repro.core.chain.entry"])
        assert set(chains) == {
            "repro.core.chain.entry",
            "repro.core.chain.mid",
            "repro.core.chain.leaf",
        }
        # leaf is called both directly and via mid; BFS keeps the
        # direct (shorter) chain.
        assert chains["repro.core.chain.leaf"] == (
            "repro.core.chain.entry",
            "repro.core.chain.leaf",
        )

    def test_unreached_function_absent(self, write_module, tmp_path):
        write_module(
            "repro.core.island",
            """
            def entry():
                pass

            def stranded():
                pass
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        chains = graph.reachable(["repro.core.island.entry"])
        assert "repro.core.island.stranded" not in chains


class TestCallableRefs:
    def test_name_and_dotted_refs_resolve(self, write_module, tmp_path):
        write_module(
            "repro.core.refs",
            """
            def worker():
                pass
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        name_ref = ast.parse("worker", mode="eval").body
        assert (
            graph.resolve_callable_ref("repro.core.refs", name_ref)
            == "repro.core.refs.worker"
        )


class TestSerialisation:
    def test_to_dict_shape(self, write_module, tmp_path):
        write_module(
            "repro.core.dump",
            """
            def f():
                g()

            def g():
                pass
            """,
        )
        graph = build_graph([tmp_path])
        raw = graph.to_dict()
        assert "modules" in raw and "functions" in raw
        assert "repro.core.dump.f" in raw["functions"]


class TestEdgeCases:
    def test_decorated_function_is_collected_and_resolved(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.deco",
            """
            import functools

            @functools.lru_cache(maxsize=None)
            def cached(x):
                return x

            def use():
                return cached(3)
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        assert "repro.core.deco.cached" in graph.functions
        calls = graph.functions["repro.core.deco.use"].calls
        assert any("repro.core.deco.cached" in site.targets for site in calls)

    def test_lambda_callables_are_opaque_not_fatal(
        self, write_module, tmp_path
    ):
        # A lambda body belongs to a scope the graph does not model: the
        # call through it resolves to no targets, and a lambda handed to
        # pool.submit contributes no worker entry — but neither crashes
        # graph construction or reachability.
        write_module(
            "repro.core.lam",
            """
            from concurrent.futures import ProcessPoolExecutor

            def indirect():
                f = lambda v: v + 1
                return f(2)

            def launch(pool: ProcessPoolExecutor):
                pool.submit(lambda: 1)
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        calls = graph.functions["repro.core.lam.indirect"].calls
        assert all(site.targets == () for site in calls)
        assert graph.reachable(["repro.core.lam.indirect"]) == {
            "repro.core.lam.indirect": ("repro.core.lam.indirect",)
        }

    def test_method_resolution_through_dataclass_attribute(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.holder",
            """
            from dataclasses import dataclass

            class Engine:
                def run(self):
                    return 1

            @dataclass
            class Holder:
                engine: Engine

                def go(self):
                    return self.engine.run()
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        calls = graph.functions["repro.core.holder.Holder.go"].calls
        assert any(
            "repro.core.holder.Engine.run" in site.targets for site in calls
        )

    def test_call_cycle_reachability_terminates(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.cycle",
            """
            def ping(n):
                return pong(n)

            def pong(n):
                if n:
                    return ping(n - 1)
                return 0
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        chains = graph.reachable(["repro.core.cycle.ping"])
        assert set(chains) == {
            "repro.core.cycle.ping",
            "repro.core.cycle.pong",
        }
        # Shortest chains, not cycle-inflated ones.
        assert chains["repro.core.cycle.pong"] == (
            "repro.core.cycle.ping",
            "repro.core.cycle.pong",
        )
