"""Fork-safety/determinism pass: each hazard fires, and suppresses."""

from repro.checks.determinism import (
    DETERMINISM_RULES,
    discover_worker_entries,
)
from repro.checks.engine import run_project_checks
from repro.checks.graph import ProjectGraph


def _findings(tmp_path, rule_id=None):
    findings = run_project_checks([tmp_path], rules=DETERMINISM_RULES)
    if rule_id is not None:
        findings = [f for f in findings if f.rule == rule_id]
    return findings


class TestEntryDiscovery:
    def test_conventional_names_and_submit_targets(
        self, write_module, tmp_path
    ):
        write_module(
            "repro.core.pool",
            """
            from concurrent.futures import ProcessPoolExecutor

            def _init_worker(state):
                pass

            def _run_shard(shard):
                pass

            def _task(x):
                return x

            def launch():
                with ProcessPoolExecutor(initializer=_init_worker) as pool:
                    pool.submit(_task, 1)
            """,
        )
        graph = ProjectGraph.build([tmp_path])
        entries = {e.qualname: e.kind for e in discover_worker_entries(graph)}
        assert entries["repro.core.pool._init_worker"] == "initializer"
        assert entries["repro.core.pool._run_shard"] == "conventional"
        assert entries["repro.core.pool._task"] == "submitted"


class TestWorkerGlobalWrite:
    SOURCE = """
        _CACHE = {{}}

        def _run_shard(shard):
            _CACHE[shard] = compute(shard)  {suffix}
            return _CACHE[shard]

        def compute(shard):
            return shard
        """

    def test_fires(self, write_module, tmp_path):
        write_module("repro.core.glob", self.SOURCE.format(suffix=""))
        findings = _findings(tmp_path, "worker-global-write")
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message or "module-level" in findings[0].message

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.glob",
            self.SOURCE.format(suffix="# repro: ignore[worker-global-write]"),
        )
        assert _findings(tmp_path, "worker-global-write") == []

    def test_initializer_is_exempt(self, write_module, tmp_path):
        write_module(
            "repro.core.init",
            """
            _STATE = {}

            def _init_worker(payload):
                _STATE["payload"] = payload
            """,
        )
        assert _findings(tmp_path, "worker-global-write") == []


class TestWorkerUnorderedIter:
    SOURCE = """
        def _run_shard(sites):
            out = []
            for site in {iterable}:  {suffix}
                out.append(site)
            return out
        """

    def test_set_comprehension_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.iter",
            self.SOURCE.format(iterable="{s for s in sites}", suffix=""),
        )
        findings = _findings(tmp_path, "worker-unordered-iter")
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_dict_keys_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.iter",
            self.SOURCE.format(iterable="sites.keys()", suffix=""),
        )
        assert len(_findings(tmp_path, "worker-unordered-iter")) == 1

    def test_sorted_wrapper_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.iter",
            self.SOURCE.format(iterable="sorted({s for s in sites})", suffix=""),
        )
        assert _findings(tmp_path, "worker-unordered-iter") == []

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.iter",
            self.SOURCE.format(
                iterable="{s for s in sites}",
                suffix="# repro: ignore[worker-unordered-iter]",
            ),
        )
        assert _findings(tmp_path, "worker-unordered-iter") == []


class TestMergeUnorderedIter:
    SOURCE = """
        def merge(futures, sites):
            completed = {{}}
            for future in futures:
                for key, value in future.result():
                    completed[key] = value
            return [completed[k] for k in {iterable}]  {suffix}
        """

    def test_direct_iteration_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.merge",
            self.SOURCE.format(iterable="completed", suffix=""),
        )
        findings = _findings(tmp_path, "merge-unordered-iter")
        assert len(findings) == 1
        assert "completion order" in findings[0].message

    def test_canonical_key_sequence_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.merge",
            self.SOURCE.format(iterable="sites", suffix=""),
        )
        assert _findings(tmp_path, "merge-unordered-iter") == []

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.merge",
            self.SOURCE.format(
                iterable="completed",
                suffix="# repro: ignore[merge-unordered-iter]",
            ),
        )
        assert _findings(tmp_path, "merge-unordered-iter") == []


class TestWorkerWallClock:
    SOURCE = """
        import time

        def _run_shard(shard):
            start = time.perf_counter()  {suffix}
            return shard, start
        """

    def test_fires_with_chain_note(self, write_module, tmp_path):
        write_module("repro.core.clock", self.SOURCE.format(suffix=""))
        findings = _findings(tmp_path, "worker-wall-clock")
        assert len(findings) == 1
        assert "time.perf_counter" in findings[0].message
        assert "_run_shard" in findings[0].message

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.clock",
            self.SOURCE.format(suffix="# repro: ignore[worker-wall-clock]"),
        )
        assert _findings(tmp_path, "worker-wall-clock") == []

    def test_parent_side_clock_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.parent",
            """
            import time

            def _run_shard(shard):
                return shard

            def orchestrate(pool, shards):
                start = time.perf_counter()
                futures = [pool.submit(_run_shard, s) for s in shards]
                return time.perf_counter() - start, futures
            """,
        )
        assert _findings(tmp_path, "worker-wall-clock") == []


class TestWorkerEntropy:
    def _source(self, call, suffix=""):
        return f"""
            import os
            import random
            import numpy

            def _run_shard(shard):
                return {call}  {suffix}
            """

    def test_os_urandom_fires(self, write_module, tmp_path):
        write_module("repro.core.ent", self._source("os.urandom(4)"))
        assert len(_findings(tmp_path, "worker-entropy")) == 1

    def test_stdlib_random_fires(self, write_module, tmp_path):
        write_module("repro.core.ent", self._source("random.random()"))
        findings = _findings(tmp_path, "worker-entropy")
        assert len(findings) == 1
        assert "hidden global RNG state" in findings[0].message

    def test_legacy_numpy_global_fires(self, write_module, tmp_path):
        write_module("repro.core.ent", self._source("numpy.random.rand(3)"))
        assert len(_findings(tmp_path, "worker-entropy")) == 1

    def test_unseeded_default_rng_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.ent",
            """
            from numpy.random import default_rng

            def _run_shard(shard):
                return default_rng().integers(0, 10)
            """,
        )
        assert len(_findings(tmp_path, "worker-entropy")) == 1

    def test_seeded_default_rng_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.ent",
            """
            from numpy.random import default_rng

            def _run_shard(shard):
                return default_rng(shard).integers(0, 10)
            """,
        )
        assert _findings(tmp_path, "worker-entropy") == []

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.ent",
            self._source(
                "os.urandom(4)", "# repro: ignore[worker-entropy]"
            ),
        )
        assert _findings(tmp_path, "worker-entropy") == []


class TestSanctionedTelemetry:
    """The ``repro.obs`` allowlist: clocks are sanctioned there, nowhere else."""

    OBS_HELPER = """
        import time

        def stamp():
            return time.perf_counter_ns()
        """

    WORKER = """
        from repro.obs.fake import stamp

        def _run_shard(shard):
            return shard, stamp()
        """

    def test_obs_module_clock_is_clean(self, write_module, tmp_path):
        write_module("repro.obs.fake", self.OBS_HELPER)
        write_module("repro.core.pool", self.WORKER)
        assert _findings(tmp_path, "worker-wall-clock") == []

    def test_obs_module_entropy_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.obs.fake",
            """
            import os

            def trace_id():
                return os.urandom(8).hex()
            """,
        )
        write_module(
            "repro.core.pool",
            """
            from repro.obs.fake import trace_id

            def _run_shard(shard):
                return shard, trace_id()
            """,
        )
        assert _findings(tmp_path, "worker-entropy") == []

    def test_results_path_clock_still_fires(self, write_module, tmp_path):
        # The allowlist keys on the *defining* module: the same clock call
        # in a results-path module is still a hazard.
        write_module(
            "repro.core.clockhelper",
            """
            import time

            def stamp():
                return time.perf_counter_ns()

            def _run_shard(shard):
                return shard, stamp()
            """,
        )
        assert len(_findings(tmp_path, "worker-wall-clock")) == 1

    def test_worker_calling_into_obs_and_core_fires_once(
        self, write_module, tmp_path
    ):
        # Mixed closure: the obs-side read is sanctioned, the core-side
        # read is not — exactly one finding.
        write_module("repro.obs.fake", self.OBS_HELPER)
        write_module(
            "repro.core.pool",
            """
            import time

            from repro.obs.fake import stamp

            def _run_shard(shard):
                started = time.perf_counter()
                return shard, stamp(), started
            """,
        )
        findings = _findings(tmp_path, "worker-wall-clock")
        assert len(findings) == 1
        assert findings[0].path.endswith("pool.py")

    def test_predicate(self):
        from repro.checks.determinism import is_sanctioned_telemetry

        assert is_sanctioned_telemetry("repro.obs")
        assert is_sanctioned_telemetry("repro.obs.trace")
        assert not is_sanctioned_telemetry("repro.observability")
        assert not is_sanctioned_telemetry("repro.core.executor")


class TestWorkerUnpicklable:
    def test_lambda_at_submit_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.pick",
            """
            def launch(pool, shards):
                return [pool.submit(lambda s: s, shard) for shard in shards]
            """,
        )
        findings = _findings(tmp_path, "worker-unpicklable")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_def_at_initializer_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.pick",
            """
            def launch(make_pool, payload):
                def setup():
                    return payload

                return make_pool(initializer=setup)
            """,
        )
        findings = _findings(tmp_path, "worker-unpicklable")
        assert len(findings) == 1
        assert "hoist it to module level" in findings[0].message

    def test_module_level_function_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.pick",
            """
            def _task(s):
                return s

            def launch(pool, shards):
                return [pool.submit(_task, shard) for shard in shards]
            """,
        )
        assert _findings(tmp_path, "worker-unpicklable") == []

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.pick",
            """
            def launch(pool, shards):
                return [
                    pool.submit(lambda s: s, shard)  # repro: ignore[worker-unpicklable]
                    for shard in shards
                ]
            """,
        )
        assert _findings(tmp_path, "worker-unpicklable") == []


class TestWorkerExceptionSwallow:
    def test_bare_except_pass_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.swallow",
            """
            def _run_shard(shard):
                try:
                    return compute(shard)
                except:
                    pass

            def compute(shard):
                return shard
            """,
        )
        findings = _findings(tmp_path, "worker-exception-swallow")
        assert len(findings) == 1
        assert "bare 'except:'" in findings[0].message
        assert "let it propagate" in findings[0].message

    def test_broad_except_on_called_path_fires(self, write_module, tmp_path):
        write_module(
            "repro.core.swallow",
            """
            def _run_shard(shard):
                return compute(shard)

            def compute(shard):
                for item in shard:
                    try:
                        item.work()
                    except (ValueError, Exception):
                        continue
            """,
        )
        findings = _findings(tmp_path, "worker-exception-swallow")
        assert len(findings) == 1
        assert "'except Exception:'" in findings[0].message
        assert "compute" in findings[0].message

    def test_handler_that_reraises_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.swallow",
            """
            def _run_shard(shard):
                try:
                    return compute(shard)
                except Exception:
                    raise RuntimeError("shard failed")

            def compute(shard):
                return shard
            """,
        )
        assert _findings(tmp_path, "worker-exception-swallow") == []

    def test_specific_exception_is_clean(self, write_module, tmp_path):
        write_module(
            "repro.core.swallow",
            """
            def _run_shard(shard):
                try:
                    return compute(shard)
                except OSError:
                    pass

            def compute(shard):
                return shard
            """,
        )
        assert _findings(tmp_path, "worker-exception-swallow") == []

    def test_parent_side_code_is_exempt(self, write_module, tmp_path):
        write_module(
            "repro.core.swallow",
            """
            def dispatcher_only(pool):
                try:
                    pool.poke()
                except Exception:
                    pass
            """,
        )
        assert _findings(tmp_path, "worker-exception-swallow") == []

    def test_suppressed(self, write_module, tmp_path):
        write_module(
            "repro.core.swallow",
            """
            def _run_shard(shard):
                try:
                    return compute(shard)
                except Exception:  # repro: ignore[worker-exception-swallow]
                    pass

            def compute(shard):
                return shard
            """,
        )
        assert _findings(tmp_path, "worker-exception-swallow") == []


class TestChainRendering:
    def test_deep_chain_is_elided(self, write_module, tmp_path):
        body = ["import time", "", "def _run_shard(x):", "    f1(x)", ""]
        for i in range(1, 7):
            body.append(f"def f{i}(x):")
            body.append(
                f"    f{i + 1}(x)" if i < 6 else "    time.time()"
            )
            body.append("")
        write_module("repro.core.deep", "\n".join(body))
        findings = _findings(tmp_path, "worker-wall-clock")
        assert len(findings) == 1
        assert "…" in findings[0].message
