"""Bit-width interval verifier: drive proofs, widening bugs, mask closure."""

from repro.checks.engine import run_project_checks
from repro.checks.graph import ProjectGraph
from repro.checks.intervals import (
    INTERVAL_RULES,
    Interval,
    TOP,
    verify_intervals,
)
from repro.systolic.datatypes import INT8, INT32

REGISTRY = """
    from repro.systolic.datatypes import INT8, INT32

    SIGNAL_A_REG = "a_reg"
    SIGNAL_B_REG = "b_reg"
    SIGNAL_PRODUCT = "product"
    SIGNAL_SUM = "sum"

    _SIGNAL_DTYPES = {
        SIGNAL_A_REG: INT8,
        SIGNAL_B_REG: INT8,
        SIGNAL_PRODUCT: INT32,
        SIGNAL_SUM: INT32,
    }
    """

CLEAN_MAC = """
    from repro.systolic.datatypes import INT8, INT32
    from repro.faults.sites import (
        SIGNAL_A_REG,
        SIGNAL_B_REG,
        SIGNAL_PRODUCT,
        SIGNAL_SUM,
    )

    class MacUnit:
        def __init__(self, input_dtype=INT8, acc_dtype=INT32):
            self.input_dtype = input_dtype
            self.acc_dtype = acc_dtype

        def _drive(self, signal, value, cycle):
            return value

        def compute(self, a, b, acc, cycle):
            av = self.input_dtype.wrap(a)
            bv = self.input_dtype.wrap(b)
            av = self._drive(SIGNAL_A_REG, av, cycle)
            bv = self._drive(SIGNAL_B_REG, bv, cycle)
            product = self.acc_dtype.wrap(av * bv)
            product = self._drive(SIGNAL_PRODUCT, product, cycle)
            total = self.acc_dtype.wrap(acc + product)
            return self._drive(SIGNAL_SUM, total, cycle)
    """


class TestIntervalDomain:
    def test_product_corners(self):
        int8 = Interval(-128, 127)
        product = int8 * int8
        assert product == Interval(-16256, 16384)
        assert product.within(INT32)
        assert not product.within(INT8)

    def test_top_absorbs(self):
        assert (TOP + Interval(0, 1)).is_top
        assert Interval(1, 2).join(TOP).is_top
        assert not TOP.within(INT32)

    def test_join_is_hull(self):
        assert Interval(-5, 0).join(Interval(3, 9)) == Interval(-5, 9)


class TestDriveProofs:
    def _proofs(self, write_module, tmp_path, mac_source=CLEAN_MAC):
        write_module("repro.faults.sites", REGISTRY)
        write_module("repro.systolic.mac", mac_source)
        graph = ProjectGraph.build([tmp_path])
        return verify_intervals(graph)

    def test_all_four_signals_discharged(self, write_module, tmp_path):
        findings, proofs = self._proofs(write_module, tmp_path)
        assert findings == []
        by_signal = {p.signal: p for p in proofs}
        assert set(by_signal) == {"a_reg", "b_reg", "product", "sum"}
        assert by_signal["a_reg"].dtype_name == "INT8"
        assert by_signal["a_reg"].interval == Interval(-128, 127)
        # The paper's INT8xINT8 containment fact, derived statically.
        assert by_signal["product"].interval == Interval(-16256, 16384)
        assert by_signal["sum"].dtype_name == "INT32"

    def test_unwrapped_operand_widening_bug_fires(
        self, write_module, tmp_path
    ):
        # Synthetic bug: the product is computed from the raw operands,
        # whose interval is unbounded, so the INT32 wrap may lose bits.
        buggy = CLEAN_MAC.replace(
            "product = self.acc_dtype.wrap(av * bv)",
            "product = self.acc_dtype.wrap(a * b)",
        )
        findings, proofs = self._proofs(write_module, tmp_path, buggy)
        assert any(
            f.rule == "interval-escape" and "lossless" in f.message
            for f in findings
        )

    def test_overdriven_signal_fires(self, write_module, tmp_path):
        # INT32-wrapped value driven onto an INT8-declared signal.
        buggy = CLEAN_MAC.replace(
            "av = self._drive(SIGNAL_A_REG, av, cycle)",
            "av = self._drive(SIGNAL_A_REG, self.acc_dtype.wrap(a), cycle)",
        )
        findings, _ = self._proofs(write_module, tmp_path, buggy)
        assert any(
            f.rule == "interval-escape" and "escapes its declared width" in f.message
            for f in findings
        )

    def test_suppression_silences_escape(self, write_module, tmp_path):
        buggy = CLEAN_MAC.replace(
            "product = self.acc_dtype.wrap(av * bv)",
            "product = self.acc_dtype.wrap(a * b)"
            "  # repro: ignore[interval-escape]",
        )
        write_module("repro.faults.sites", REGISTRY)
        write_module("repro.systolic.mac", buggy)
        findings = run_project_checks([tmp_path], rules=INTERVAL_RULES)
        assert [f for f in findings if f.rule == "interval-escape"] == []


class TestMaskClosure:
    def _findings(self, write_module, tmp_path, body):
        write_module(
            "repro.faults.model_fixture",
            f"""
            class FaultModel:
                def __init__(self, bit):
                    self.bit = bit

                def apply(self, value, dtype, cycle):
            {body}
            """,
        )
        findings = run_project_checks([tmp_path], rules=INTERVAL_RULES)
        return [f for f in findings if f.rule == "mask-closure"]

    def test_widening_return_fires(self, write_module, tmp_path):
        findings = self._findings(
            write_module, tmp_path, "        return value + 1"
        )
        assert len(findings) == 1

    def test_range_closed_return_is_clean(self, write_module, tmp_path):
        findings = self._findings(
            write_module,
            tmp_path,
            "        return dtype.force_bit(value, self.bit, True)",
        )
        assert findings == []

    def test_passthrough_and_ifexp_are_clean(self, write_module, tmp_path):
        findings = self._findings(
            write_module,
            tmp_path,
            "        masked = dtype.flip_bit(value, self.bit)\n"
            "        return masked if cycle else value",
        )
        assert findings == []
