"""The linter's standing self-check: the repository must lint clean.

This is the acceptance gate of the checks subsystem — every invariant rule
runs over ``src/repro`` itself, so any future change that breaks a
contract (a float in the datapath, a raw signal literal, an unseeded RNG,
a drifting ``__all__``, an unfrozen contract dataclass) fails the suite.
"""

from pathlib import Path

from repro.checks import ALL_RULES, render_text, run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def test_package_root_exists():
    assert PACKAGE_ROOT.is_dir(), PACKAGE_ROOT


def test_repository_lints_clean():
    findings = run_checks([PACKAGE_ROOT])
    assert findings == [], "\n" + render_text(findings)


def test_full_battery_ran():
    # Guard against the self-check silently passing because rules vanished.
    assert {rule.id for rule in ALL_RULES} == {
        "bit-accuracy",
        "signal-literal",
        "unseeded-random",
        "export-hygiene",
        "dataclass-contract",
    }
