"""The linter's standing self-check: the repository must lint clean.

This is the acceptance gate of the checks subsystem — every invariant rule
runs over ``src/repro`` itself, so any future change that breaks a
contract (a float in the datapath, a raw signal literal, an unseeded RNG,
a drifting ``__all__``, an unfrozen contract dataclass, a fork-safety
hazard on a worker path, a signal drive that escapes its width, a generic
raise escaping to a campaign entry, fault taint reaching the golden
slice, a drifting record codec pair, an implicit platform-default dtype
or refutable broadcast in the vectorised numpy tier) fails the suite. True positives get
fixed in-source, never baselined here.
"""

from pathlib import Path

from repro.checks import (
    ALL_RULES,
    lint_paths,
    project_rules,
    render_text,
    rule_catalog,
    run_checks,
)
from repro.checks.graph import ProjectGraph
from repro.checks.intervals import verify_intervals

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: Every signal the MAC datapath registers; each must get a drive proof.
MAC_SIGNALS = {"a_reg", "b_reg", "product", "sum"}


def test_package_root_exists():
    assert PACKAGE_ROOT.is_dir(), PACKAGE_ROOT


def test_repository_lints_clean_per_file():
    findings = run_checks([PACKAGE_ROOT])
    assert findings == [], "\n" + render_text(findings)


def test_repository_lints_clean_full_battery():
    findings = lint_paths([PACKAGE_ROOT], cache_path=None)
    assert findings == [], "\n" + render_text(findings)


def test_parallel_lint_matches_serial():
    # ``--jobs`` must be a pure wall-clock knob: the pooled per-file
    # battery merges to exactly the serial findings (here: none).
    assert run_checks([PACKAGE_ROOT], jobs=2) == run_checks([PACKAGE_ROOT])


def test_mac_drive_obligations_all_discharged():
    graph = ProjectGraph.build([PACKAGE_ROOT])
    findings, proofs = verify_intervals(graph)
    assert findings == [], "\n" + render_text(findings)
    proved = {proof.signal for proof in proofs}
    assert MAC_SIGNALS <= proved, f"unproved signals: {MAC_SIGNALS - proved}"
    # The paper's datapath containment fact, statically derived: an
    # INT8xINT8 product can never exceed [-16256, 16384] and therefore
    # always fits the INT32 accumulator without wrapping.
    product = next(p for p in proofs if p.signal == "product")
    assert (product.interval.lo, product.interval.hi) == (-16256, 16384)


def test_full_battery_ran():
    # Guard against the self-check silently passing because rules vanished.
    assert {rule.id for rule in ALL_RULES} == {
        "bit-accuracy",
        "signal-literal",
        "unseeded-random",
        "export-hygiene",
        "dataclass-contract",
    }
    assert {rule.id for rule in project_rules()} == {
        "worker-global-write",
        "worker-unordered-iter",
        "merge-unordered-iter",
        "worker-wall-clock",
        "worker-entropy",
        "worker-unpicklable",
        "worker-exception-swallow",
        "interval-escape",
        "mask-closure",
        "exception-contract",
        "golden-purity",
        "schema-drift",
        "array-dtype-closure",
        "array-broadcast",
        "array-shape-conservation",
        "array-alloc-in-loop",
        "socket-discipline",
    }
    assert len(rule_catalog()) == len(ALL_RULES) + len(project_rules())
