"""Incremental cache: warm-run speedup, invalidation, safety."""

import json
import time
from pathlib import Path

from repro.checks import lint_paths
from repro.checks.cache import LintCache, rules_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


class TestWarmSpeedup:
    def test_warm_rerun_at_least_5x_faster(self, tmp_path):
        cache_path = tmp_path / "cache.json"

        start = time.perf_counter()
        cold = lint_paths([PACKAGE_ROOT], cache_path=cache_path)
        cold_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        warm = lint_paths([PACKAGE_ROOT], cache_path=cache_path)
        warm_elapsed = time.perf_counter() - start

        assert warm == cold
        assert warm_elapsed < cold_elapsed / 5, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"
        )


class TestInvalidation:
    def _tree(self, write_module):
        clean = write_module(
            "repro.core.clean",
            """
            __all__ = ["fine"]

            def fine():
                return 1
            """,
        )
        return clean

    def test_file_edit_invalidates_only_that_file(
        self, write_module, tmp_path
    ):
        clean = self._tree(write_module)
        cache_path = tmp_path / "cache.json"
        assert lint_paths([clean], cache_path=cache_path) == []

        # Introduce a violation; the stale digest forces a re-lint.
        clean.write_text(clean.read_text() + "\n\ndef leaked():\n    pass\n")
        findings = lint_paths([clean], cache_path=cache_path)
        assert any(f.rule == "export-hygiene" for f in findings)

    def test_rules_change_drops_cache(self, write_module, tmp_path):
        clean = self._tree(write_module)
        cache_path = tmp_path / "cache.json"
        lint_paths([clean], cache_path=cache_path)

        raw = json.loads(cache_path.read_text())
        assert raw["rules"] == rules_fingerprint()
        raw["rules"] = "0" * 64  # simulate an edited rules package
        cache_path.write_text(json.dumps(raw))

        cache = LintCache(cache_path)
        assert cache.files == {}
        assert cache.project is None

    def test_version_mismatch_drops_cache(self, write_module, tmp_path):
        clean = self._tree(write_module)
        cache_path = tmp_path / "cache.json"
        lint_paths([clean], cache_path=cache_path)

        raw = json.loads(cache_path.read_text())
        raw["version"] = 999
        cache_path.write_text(json.dumps(raw))

        cache = LintCache(cache_path)
        assert cache.files == {}

    def test_corrupt_cache_file_is_ignored(self, write_module, tmp_path):
        clean = self._tree(write_module)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{ not json")
        assert lint_paths([clean], cache_path=cache_path) == []
        # And the run repaired it.
        assert json.loads(cache_path.read_text())["version"] == 1


class TestCacheBypass:
    def test_use_cache_false_never_touches_disk(
        self, write_module, tmp_path
    ):
        clean = self._tree = write_module(
            "repro.core.clean",
            """
            __all__ = ["fine"]

            def fine():
                return 1
            """,
        )
        cache_path = tmp_path / "cache.json"
        lint_paths([clean], cache_path=cache_path, use_cache=False)
        assert not cache_path.exists()

    def test_none_cache_path_disables_cache(self, write_module):
        clean = write_module(
            "repro.core.clean",
            """
            __all__ = ["fine"]

            def fine():
                return 1
            """,
        )
        assert lint_paths([clean], cache_path=None) == []
