"""SARIF 2.1.0 output: structure, rule indices, coordinates."""

import json

from repro.checks.engine import Finding, Severity, rule_catalog
from repro.checks.sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif


def _finding(**overrides):
    defaults = dict(
        path="src/repro/systolic/mac.py",
        line=12,
        col=4,
        rule="bit-accuracy",
        severity=Severity.ERROR,
        message="float literal in the datapath",
    )
    defaults.update(overrides)
    return Finding(**defaults)


class TestDocumentShape:
    def test_schema_and_version(self):
        doc = json.loads(render_sarif([]))
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert len(doc["runs"]) == 1

    def test_driver_carries_full_catalogue(self):
        doc = json.loads(render_sarif([]))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-fi-lint"
        ids = {entry["id"] for entry in driver["rules"]}
        assert {rule.id for rule in rule_catalog()} <= ids
        assert "syntax-error" in ids

    def test_catalogue_entries_have_level_and_description(self):
        doc = json.loads(render_sarif([]))
        for entry in doc["runs"][0]["tool"]["driver"]["rules"]:
            assert entry["shortDescription"]["text"]
            assert entry["defaultConfiguration"]["level"] in ("warning", "error")


class TestResults:
    def test_rule_index_points_at_matching_rule(self):
        findings = [
            _finding(),
            _finding(rule="worker-wall-clock", severity=Severity.ERROR),
            _finding(rule="export-hygiene", severity=Severity.WARNING),
        ]
        doc = json.loads(render_sarif(findings))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_levels_map_from_severity(self):
        doc = json.loads(
            render_sarif(
                [
                    _finding(severity=Severity.ERROR),
                    _finding(
                        rule="export-hygiene", severity=Severity.WARNING
                    ),
                ]
            )
        )
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning"]

    def test_region_columns_are_one_based(self):
        doc = json.loads(render_sarif([_finding(line=12, col=4)]))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startLine"] == 12
        assert region["startColumn"] == 5  # SARIF columns are 1-based

    def test_uri_is_posix_relative(self):
        doc = json.loads(render_sarif([_finding()]))
        uri = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert "\\" not in uri
        assert not uri.startswith("/")

    def test_message_text_round_trips(self):
        doc = json.loads(render_sarif([_finding(message="boom & <tag>")]))
        assert (
            doc["runs"][0]["results"][0]["message"]["text"] == "boom & <tag>"
        )
