"""Dtype closure of the analytic tier, end to end.

The array shape/dtype pass (:mod:`repro.checks.arrays`) proves
statically that no platform-default integer enters the vectorised
kernels; this module is the dynamic half of that contract: the delta
tensors the analytic engine actually materialises — kernel-level chain
states, im2col gather indices' output, and every campaign experiment's
deviation — must be ``int64`` regardless of host platform defaults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.campaign import (
    Campaign,
    ConvWorkload,
    FaultSpec,
    FillKind,
    GemmWorkload,
)
from repro.engines.analytic.algebra import (
    FaultLens,
    os_chain_tile,
    ws_chain_tile,
)
from repro.faults.sites import SIGNAL_SUM
from repro.ops.im2col import ConvGeometry, im2col
from repro.systolic import Dataflow, MeshConfig
from repro.systolic.datatypes import INT8, INT32

MESH = MeshConfig(rows=4, cols=4)

DATAFLOWS = (
    Dataflow.OUTPUT_STATIONARY,
    Dataflow.WEIGHT_STATIONARY,
    Dataflow.INPUT_STATIONARY,
)


def _lens() -> FaultLens:
    return FaultLens(
        signal=SIGNAL_SUM,
        bit=20,
        stuck=1,
        input_dtype=INT8,
        acc_dtype=INT32,
    )


class TestKernelDtypes:
    def test_os_chain_tile_returns_int64(self):
        rng = np.random.default_rng(7)
        a = rng.integers(-128, 128, size=(4, 3), dtype=np.int64)
        b = rng.integers(-128, 128, size=(3, 4), dtype=np.int64)
        rows = np.array([0, 1], dtype=np.int64)
        cols = np.array([2, 3], dtype=np.int64)
        acc = np.zeros(2, dtype=np.int64)
        out = os_chain_tile(acc, a, b, rows, cols, _lens())
        assert out.dtype == np.int64

    def test_ws_chain_tile_returns_int64(self):
        rng = np.random.default_rng(7)
        a = rng.integers(-128, 128, size=(4, 3), dtype=np.int64)
        w = rng.integers(-128, 128, size=(3, 4), dtype=np.int64)
        rows = np.array([0, 1], dtype=np.int64)
        cols = np.array([2, 3], dtype=np.int64)
        state = np.zeros((4, 2), dtype=np.int64)
        out = ws_chain_tile(state, a, w, rows, cols, MESH.rows, _lens())
        assert out.dtype == np.int64

    def test_im2col_output_is_int64(self):
        geometry = ConvGeometry(n=1, c=2, h=4, w=4, k=3, r=2, s=2)
        rng = np.random.default_rng(7)
        inputs = rng.integers(-128, 128, size=(1, 2, 4, 4), dtype=np.int64)
        assert im2col(inputs, geometry).dtype == np.int64


class TestCampaignDeltaDtypes:
    """Every analytic experiment's deviation/mask, all dataflows + conv."""

    @pytest.mark.parametrize("dataflow", DATAFLOWS, ids=str)
    def test_gemm_deviation_is_int64(self, dataflow):
        workload = GemmWorkload(
            m=9, k=7, n=8, dataflow=dataflow, fill=FillKind.RANDOM, seed=3
        )
        self._assert_int64_deltas(workload)

    def test_conv_deviation_is_int64(self):
        workload = ConvWorkload(
            input_size=4,
            kernel_rows=2,
            kernel_cols=2,
            in_channels=2,
            out_channels=3,
            dataflow=Dataflow.WEIGHT_STATIONARY,
            fill=FillKind.RANDOM,
            seed=5,
        )
        self._assert_int64_deltas(workload)

    @staticmethod
    def _assert_int64_deltas(workload) -> None:
        result = Campaign(
            MESH, workload, fault_spec=FaultSpec(), engine="analytic"
        ).run()
        assert result.golden.dtype == np.int64
        experiments = list(result.experiments)
        assert experiments, "campaign produced no experiments"
        for experiment in experiments:
            pattern = experiment.pattern
            assert pattern is not None
            assert pattern.deviation.dtype == np.int64, experiment.site
            assert pattern.mask.dtype == np.bool_, experiment.site
