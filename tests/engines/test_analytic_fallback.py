"""Fallback and resilience regressions for the analytic tier.

The analytic engine declines fault models its delta algebra cannot close
over and evaluates those sites on the functional engine instead. These
tests pin three properties of that seam:

* **Bit-identity** — a campaign whose fault spec mixes closed-form
  stuck-at sites with fallback (bridging-fault) sites is field-for-field
  identical to the same campaign on the pure functional engine, serial
  and sharded alike.
* **Observability** — the ``repro_analytic_fallback_total`` counter
  reports exactly the fallback sites, from the serial evaluator and from
  the parallel parent (whose workers run with null metrics).
* **Resilience** — the PR 4 chaos harness and mid-batch
  checkpoint/resume heal batched shards exactly as they heal per-site
  shards: the final result is still bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.campaign import Campaign, FaultSpec, GemmWorkload
from repro.core.chaos import ChaosAction, ChaosSpec
from repro.core.executor import ParallelExecutor, SerialExecutor
from repro.core.resilience import RetryPolicy
from repro.core.serialize import read_checkpoint
from repro.engines.analytic import (
    AnalyticUnsupported,
    check_supported,
    supported_reason,
    unsupported_sites,
)
from repro.engines.analytic.engine import FALLBACK_METRIC
from repro.faults.model import BridgingFault, StuckAtFault, TransientBitFlip
from repro.faults.sites import FaultSite
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import (
    assert_campaigns_equivalent,
    assert_experiments_equal,
)

MESH = MeshConfig(rows=4, cols=4)
WORKLOAD = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_cap=0.05)

#: Sites whose fault the spec below swaps for a bridging fault — chosen
#: off the diagonal and in distinct shards of a 2-worker split.
BRIDGED = ((0, 1), (2, 3))


@dataclass(frozen=True)
class BridgedFaultSpec(FaultSpec):
    """A fault spec that plants closed-form-less faults at chosen sites.

    Sites in ``bridge_sites`` get a :class:`BridgingFault` (no analytic
    closed form — forces the per-site functional fallback); every other
    site keeps the plain stuck-at fault. Frozen and picklable, so it
    rides the executor's worker initializer unchanged.
    """

    bridge_sites: tuple[tuple[int, int], ...] = ()

    def fault_at(self, row: int, col: int):
        if (row, col) in self.bridge_sites:
            site = FaultSite(
                row=row, col=col, signal=self.signal, bit=self.bit
            )
            return BridgingFault(
                site=site, other_bit=self.bit - 1, mode="or"
            )
        return super().fault_at(row, col)


SPEC = BridgedFaultSpec(bridge_sites=BRIDGED)


def analytic_campaign(**kwargs) -> Campaign:
    kwargs.setdefault("fault_spec", SPEC)
    return Campaign(MESH, WORKLOAD, engine="analytic", **kwargs)


@pytest.fixture(scope="module")
def functional_reference():
    """The pure-functional result of the mixed-fault campaign."""
    return Campaign(MESH, WORKLOAD, fault_spec=SPEC).run()


class TestSupportPredicate:
    def test_stuck_at_is_supported(self):
        fault = FaultSpec().fault_at(1, 2)
        assert supported_reason(fault, Dataflow.WEIGHT_STATIONARY) is None
        check_supported(fault, Dataflow.WEIGHT_STATIONARY)  # no raise

    @pytest.mark.parametrize(
        "fault",
        [
            SPEC.fault_at(*BRIDGED[0]),
            TransientBitFlip(
                site=FaultSite(row=0, col=0, signal="sum", bit=3),
                start_cycle=2,
            ),
        ],
        ids=["bridging", "transient"],
    )
    def test_unsupported_models_raise_typed(self, fault):
        reason = supported_reason(fault, Dataflow.OUTPUT_STATIONARY)
        assert reason is not None and type(fault).__name__ in reason
        with pytest.raises(AnalyticUnsupported, match="closed-form"):
            check_supported(fault, Dataflow.OUTPUT_STATIONARY)

    def test_stuck_at_subclass_is_not_trusted(self):
        # A subclass may override apply() arbitrarily; the whitelist must
        # not assume the algebra still matches it.
        @dataclass(frozen=True)
        class Inverted(StuckAtFault):
            pass

        fault = Inverted(
            site=FaultSite(row=0, col=0, signal="sum", bit=3), stuck_value=1
        )
        assert supported_reason(fault, Dataflow.WEIGHT_STATIONARY) is not None

    def test_unsupported_sites_prediction(self):
        campaign = analytic_campaign()
        assert unsupported_sites(campaign, campaign.sites) == list(BRIDGED)


class TestFallbackEquivalence:
    def test_serial_bit_identity(self, functional_reference):
        result = analytic_campaign().run()
        assert_campaigns_equivalent(functional_reference, result)

    def test_serial_fallback_counter(self, functional_reference):
        obs = Observability(metrics=MetricsRegistry())
        result = analytic_campaign().run(SerialExecutor(obs=obs))
        assert_campaigns_equivalent(functional_reference, result)
        assert obs.metrics.value(FALLBACK_METRIC) == len(BRIDGED)

    def test_parallel_bit_identity_and_counter(self, functional_reference):
        obs = Observability(metrics=MetricsRegistry())
        result = analytic_campaign().run(ParallelExecutor(jobs=2, obs=obs))
        assert_campaigns_equivalent(functional_reference, result)
        # Workers evaluate with null metrics; the parent's prediction
        # must account for every fallback exactly once.
        assert obs.metrics.value(FALLBACK_METRIC) == len(BRIDGED)

    def test_pure_stuck_at_campaign_counts_zero(self):
        obs = Observability(metrics=MetricsRegistry())
        Campaign(MESH, WORKLOAD, engine="analytic").run(
            SerialExecutor(obs=obs)
        )
        assert obs.metrics.value(FALLBACK_METRIC) == 0


class TestChaosHealing:
    """The PR 4 chaos harness over *batched* shards."""

    def test_transient_raise_heals_to_identity(
        self, tmp_path, functional_reference
    ):
        chaos = ChaosSpec.build(
            {(1, 1): ChaosAction("raise", times=1)}, state_dir=tmp_path
        )
        result = analytic_campaign().run(
            ParallelExecutor(jobs=2, retry=FAST_RETRY, chaos=chaos)
        )
        assert_campaigns_equivalent(functional_reference, result)

    def test_corrupt_batched_payload_is_caught_and_retried(
        self, tmp_path, functional_reference
    ):
        # A "corrupt" action mangles one record of the batched payload;
        # shard validation must reject it and the retry must heal it.
        chaos = ChaosSpec.build(
            {(2, 2): ChaosAction("corrupt", times=1)}, state_dir=tmp_path
        )
        result = analytic_campaign().run(
            ParallelExecutor(jobs=2, retry=FAST_RETRY, chaos=chaos)
        )
        assert_campaigns_equivalent(functional_reference, result)

    def test_persistent_poison_quarantines_only_its_site(
        self, functional_reference
    ):
        chaos = ChaosSpec.build({(3, 0): ChaosAction("raise", times=None)})
        result = analytic_campaign().run(
            ParallelExecutor(jobs=2, retry=FAST_RETRY, chaos=chaos)
        )
        assert result.quarantined_sites() == [(3, 0)]
        ran = [site for site in analytic_campaign().sites if site != (3, 0)]
        assert [(e.site.row, e.site.col) for e in result.experiments] == ran
        for row, col in ran:
            assert_experiments_equal(
                functional_reference.result_at(row, col),
                result.result_at(row, col),
            )


class TestCheckpointResume:
    def test_resume_mid_batch_heals_to_identity(
        self, tmp_path, functional_reference
    ):
        path = tmp_path / "analytic.jsonl"
        analytic_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))
        # Simulate a kill mid-campaign: keep the header plus a record
        # count that lands *inside* a batched shard.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:7]) + "\n")
        resumed = analytic_campaign().run(
            ParallelExecutor(jobs=2, resume=path)
        )
        assert_campaigns_equivalent(functional_reference, resumed)
        _, records = read_checkpoint(path)
        assert len(records) == MESH.num_macs

    def test_checkpoint_header_pins_analytic_engine(self, tmp_path):
        path = tmp_path / "analytic.jsonl"
        analytic_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))
        header, _ = read_checkpoint(path)
        assert header["engine"] == "analytic"
        # A functional campaign must refuse the analytic checkpoint.
        with pytest.raises(ValueError, match="different campaign"):
            Campaign(MESH, WORKLOAD, fault_spec=SPEC).run(
                ParallelExecutor(jobs=2, resume=path)
            )
