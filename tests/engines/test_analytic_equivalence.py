"""Three-way differential harness: analytic vs functional vs cycle.

The analytic tier's entire contract is *bit-identity*: for every
campaign the closed-form ``golden + delta`` evaluation must produce
exactly the experiments (outputs, masks, deviations, classifier labels,
summary reductions) that the functional and cycle simulators produce.
This module sweeps that contract across the axes the delta algebra
branches on — dataflow, operation (single-tile GEMM, ragged tiled GEMM,
convolution), mesh shape, fault signal, bit position, and stuck
polarity — using the same field-for-field assertions the executor
equivalence suite uses.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import (
    Campaign,
    ConvWorkload,
    FaultSpec,
    FillKind,
    GemmWorkload,
)
from repro.faults.sites import (
    SIGNAL_A_REG,
    SIGNAL_B_REG,
    SIGNAL_PRODUCT,
    SIGNAL_SUM,
    signal_dtype,
)
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import assert_campaigns_equivalent

MESH = MeshConfig(rows=4, cols=4)

DATAFLOWS = (
    Dataflow.OUTPUT_STATIONARY,
    Dataflow.WEIGHT_STATIONARY,
    Dataflow.INPUT_STATIONARY,
)


def _workload(kind: str, dataflow: Dataflow):
    if kind == "gemm":
        # Mesh-sized single tile: no tiling effects in play.
        return GemmWorkload.square(4, dataflow, fill=FillKind.RANDOM)
    if kind == "tiled-gemm":
        # Ragged multi-tile: uneven trailing tiles on every axis, so the
        # per-tile footprint masking and reduction chaining both matter.
        return GemmWorkload(
            m=9, k=7, n=8, dataflow=dataflow, fill=FillKind.RANDOM, seed=3
        )
    if kind == "conv":
        return ConvWorkload(
            input_size=4,
            kernel_rows=2,
            kernel_cols=2,
            in_channels=2,
            out_channels=3,
            dataflow=dataflow,
            fill=FillKind.RANDOM,
            seed=5,
        )
    raise ValueError(kind)


def _three_way(mesh: MeshConfig, workload, spec: FaultSpec) -> None:
    """The harness core: run all three tiers, assert pairwise identity."""
    functional = Campaign(mesh, workload, fault_spec=spec).run()
    cycle = Campaign(mesh, workload, fault_spec=spec, engine="cycle").run()
    analytic = Campaign(mesh, workload, fault_spec=spec, engine="analytic").run()
    assert_campaigns_equivalent(functional, analytic)
    assert_campaigns_equivalent(cycle, analytic)


class TestOperationGrid:
    """Paper fault spec across dataflow x operation."""

    @pytest.mark.parametrize("dataflow", DATAFLOWS, ids=str)
    @pytest.mark.parametrize("kind", ("gemm", "tiled-gemm", "conv"))
    def test_three_way_identity(self, dataflow, kind):
        _three_way(MESH, _workload(kind, dataflow), FaultSpec())


class TestFaultAxes:
    """Signal x polarity x bit sweep on the mesh-sized GEMM."""

    @pytest.mark.parametrize("dataflow", DATAFLOWS, ids=str)
    @pytest.mark.parametrize(
        "signal", (SIGNAL_A_REG, SIGNAL_B_REG, SIGNAL_PRODUCT, SIGNAL_SUM)
    )
    @pytest.mark.parametrize("stuck", (0, 1))
    def test_signal_polarity(self, dataflow, signal, stuck):
        spec = FaultSpec(signal=signal, bit=2, stuck_value=stuck)
        _three_way(MESH, _workload("gemm", dataflow), spec)

    @pytest.mark.parametrize(
        "signal", (SIGNAL_A_REG, SIGNAL_B_REG, SIGNAL_PRODUCT, SIGNAL_SUM)
    )
    @pytest.mark.parametrize("edge", ("lsb", "msb"))
    def test_edge_bits(self, signal, edge):
        bit = 0 if edge == "lsb" else signal_dtype(signal).width - 1
        spec = FaultSpec(signal=signal, bit=bit, stuck_value=1)
        workload = _workload("gemm", Dataflow.WEIGHT_STATIONARY)
        _three_way(MESH, workload, spec)

    def test_paper_bit_stuck_at_zero(self):
        # The paper's sum[20] site with the opposite polarity: stuck-at-0
        # is maskable by all-ones operands, so use random fill.
        spec = FaultSpec(bit=20, stuck_value=0)
        _three_way(
            MESH, _workload("tiled-gemm", Dataflow.WEIGHT_STATIONARY), spec
        )


class TestMeshShapes:
    """Non-square meshes exercise row/col asymmetry in the footprints."""

    @pytest.mark.parametrize("dataflow", DATAFLOWS, ids=str)
    def test_rectangular_mesh(self, dataflow):
        mesh = MeshConfig(rows=5, cols=3)
        workload = GemmWorkload(
            m=6, k=5, n=5, dataflow=dataflow, fill=FillKind.RANDOM, seed=11
        )
        _three_way(mesh, workload, FaultSpec())

    def test_paper_mesh_diagonal(self):
        # A 16x16 spot-check on the paper's mesh: the full exhaustive
        # 16x16 three-way sweep lives in benchmarks/bench_analytic_engine
        # (it is also a perf artifact); here the diagonal keeps the cycle
        # engine affordable while still crossing every row and column.
        mesh = MeshConfig.paper()
        workload = GemmWorkload.square(16, Dataflow.WEIGHT_STATIONARY)
        sites = [(i, i) for i in range(16)]
        spec = FaultSpec()
        functional = Campaign(mesh, workload, fault_spec=spec, sites=sites).run()
        cycle = Campaign(
            mesh, workload, fault_spec=spec, engine="cycle", sites=sites
        ).run()
        analytic = Campaign(
            mesh, workload, fault_spec=spec, engine="analytic", sites=sites
        ).run()
        assert_campaigns_equivalent(functional, analytic)
        assert_campaigns_equivalent(cycle, analytic)
