"""The distributed fabric under test: equivalence, chaos, and recovery.

The fabric's contract is the executor's contract over a network: under
every injected network failure — worker kill, heartbeat stall, frame
truncation, duplicate result replay, coordinator SIGTERM + resume — a
distributed campaign must complete *bit-identical* to the serial
reference, with forfeited leases requeued and poison sites quarantined
rather than aborting the sweep.

Benign chaos modes (stall / replay / truncate) run against thread-hosted
:class:`WorkerAgent` instances for speed; modes that kill the agent
process (``drop``) and the coordinator crash/restart tests drive real
``repro-fi worker`` subprocesses.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core import (
    Campaign,
    CampaignExecutionError,
    ChaosAction,
    ChaosSpec,
    DistributedExecutor,
    GemmWorkload,
    ParallelExecutor,
    RetryPolicy,
    ShardTask,
    WorkerAgent,
    WorkerLost,
    read_checkpoint,
)
from repro.core.fabric.lease import LeaseTable
from repro.core.serialize import (
    decode_frame,
    encode_frame,
    fabric_setup_from_record,
    fabric_setup_record,
    lease_from_record,
    lease_record,
)
from repro.obs import MetricsRegistry, Observability
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import assert_campaigns_equivalent

MESH = MeshConfig(rows=4, cols=4)
WORKLOAD = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)

#: Fast deterministic backoff so chaos recovery stays quick.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_cap=0.05)

#: Test-scale lease timing: short enough that forfeiture happens within
#: a test, long enough that healthy heartbeats (0.3 s) always renew.
LEASE = dict(lease_seconds=1.5, heartbeat_interval=0.3)


def make_campaign(**kwargs) -> Campaign:
    return Campaign(MESH, WORKLOAD, **kwargs)


@pytest.fixture(scope="module")
def serial():
    """The reference result of an unperturbed serial run."""
    return make_campaign().run()


def thread_fleet(n_workers: int, jobs: int = 1):
    """An ``announce`` hook that launches ``n_workers`` in-process agents
    the moment the coordinator reports its bound port."""
    threads: list[threading.Thread] = []

    def announce(host: str, port: int) -> None:
        for _ in range(n_workers):
            agent = WorkerAgent(
                host,
                port,
                jobs=jobs,
                reconnect_attempts=40,
                reconnect_delay=0.25,
            )
            thread = threading.Thread(target=agent.run, daemon=True)
            thread.start()
            threads.append(thread)

    return announce, threads


def run_distributed(chaos: ChaosSpec | None = None, *, n_workers=2, **kwargs):
    """One distributed campaign against a thread-hosted fleet; returns
    ``(result, metrics)``."""
    metrics = MetricsRegistry()
    announce, threads = thread_fleet(n_workers)
    kwargs.setdefault("retry", FAST_RETRY)
    for key, value in LEASE.items():
        kwargs.setdefault(key, value)
    executor = DistributedExecutor(
        expected_workers=n_workers,
        announce=announce,
        chaos=chaos,
        obs=Observability(metrics=metrics),
        **kwargs,
    )
    result = make_campaign().run(executor)
    for thread in threads:
        thread.join(timeout=30)
    return result, metrics


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def spawn_cli_worker(port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--reconnect-attempts",
            "60",
            "--reconnect-delay",
            "0.5",
            *extra,
        ],
        env=env,
        cwd="/root/repo",
        # DEVNULL, not PIPE: the worker's spawn-context pool children
        # inherit its stdio, so a pipe would stay open past the
        # worker's own death and wedge any EOF-waiting reader.
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------


class TestFrameCodec:
    def test_roundtrip(self):
        message = {"type": "result", "shard_id": 3, "records": [1, 2]}
        frame = encode_frame(message)
        assert frame[:4] == (len(frame) - 4).to_bytes(4, "big")
        assert decode_frame(frame[4:]) == message

    def test_untyped_message_rejected(self):
        with pytest.raises(ValueError, match="type"):
            encode_frame({"shard_id": 3})

    def test_undecodable_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_frame(b"\xff\xfe not json")
        with pytest.raises(ValueError, match="type"):
            decode_frame(b'{"no_type": 1}')

    def test_lease_record_roundtrip(self):
        table = LeaseTable(lease_seconds=5.0)
        lease = table.grant(7, 2, ShardTask(sites=[(0, 1)]), now=100.0)
        assert lease_from_record(lease_record(lease)) == lease

    def test_fabric_setup_roundtrip(self):
        campaign = make_campaign()
        chaos = ChaosSpec.build({(1, 1): ChaosAction("replay", times=None)})
        record = fabric_setup_record(
            campaign, chaos=chaos, trace=True, shard_timeout=4.0
        )
        back_campaign, back_chaos, trace, timeout = fabric_setup_from_record(
            record
        )
        assert back_campaign.mesh == campaign.mesh
        assert back_campaign.sites == campaign.sites
        assert back_chaos == chaos
        assert trace is True
        assert timeout == 4.0

    def test_setup_version_guard(self):
        record = fabric_setup_record(make_campaign())
        record["schema_version"] = 999
        with pytest.raises(ValueError, match="version"):
            fabric_setup_from_record(record)


# ----------------------------------------------------------------------
# Lease table
# ----------------------------------------------------------------------


class TestLeaseTable:
    def test_grant_holds_until_deadline(self):
        table = LeaseTable(lease_seconds=2.0)
        task = ShardTask(sites=[(0, 0), (0, 1)])
        table.grant(1, 5, task, now=10.0)
        assert table.holder(1).worker_id == 5
        assert table.expired(now=11.9) == []
        assert table.expired(now=12.0) == [1]

    def test_renew_pushes_every_lease_of_the_worker(self):
        table = LeaseTable(lease_seconds=2.0)
        table.grant(1, 5, ShardTask(sites=[(0, 0)]), now=10.0)
        table.grant(2, 5, ShardTask(sites=[(0, 1)]), now=10.0)
        table.grant(3, 6, ShardTask(sites=[(0, 2)]), now=10.0)
        assert table.renew(5, now=11.5) == 2
        assert table.expired(now=12.5) == [3]
        assert table.holder(1).renewals == 1

    def test_release_returns_task_once(self):
        table = LeaseTable(lease_seconds=2.0)
        task = ShardTask(sites=[(0, 0)])
        table.grant(1, 5, task, now=0.0)
        assert table.release(1) is task
        assert table.release(1) is None  # idempotent forfeiture
        assert len(table) == 0

    def test_held_by_and_outstanding_are_ordered(self):
        table = LeaseTable(lease_seconds=2.0)
        for shard_id in (3, 1, 2):
            table.grant(shard_id, 9, ShardTask(sites=[(0, shard_id)]), 0.0)
        assert table.held_by(9) == [1, 2, 3]
        assert [t.sites for t in table.outstanding()] == [
            [(0, 1)],
            [(0, 2)],
            [(0, 3)],
        ]
        assert [entry["shard_id"] for entry in table.snapshot()] == [1, 2, 3]

    def test_rejects_nonpositive_lease(self):
        with pytest.raises(ValueError, match="positive"):
            LeaseTable(lease_seconds=0.0)


# ----------------------------------------------------------------------
# Executor validation
# ----------------------------------------------------------------------


class TestDistributedExecutorValidation:
    def test_heartbeat_must_undercut_lease(self):
        with pytest.raises(ValueError, match="shorter than lease_seconds"):
            DistributedExecutor(lease_seconds=2.0, heartbeat_interval=2.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_seconds": 0.0},
            {"heartbeat_interval": 0.0},
            {"io_timeout": 0.0},
            {"join_timeout": -1.0},
        ],
    )
    def test_rejects_nonpositive_timings(self, kwargs):
        with pytest.raises(ValueError, match="positive"):
            DistributedExecutor(**kwargs)

    def test_join_timeout_without_workers_raises_worker_lost(self):
        executor = DistributedExecutor(
            expected_workers=1, join_timeout=0.6, **LEASE
        )
        with pytest.raises(WorkerLost, match="join deadline"):
            make_campaign().run(executor)


# ----------------------------------------------------------------------
# Equivalence: healthy fleet
# ----------------------------------------------------------------------


class TestDistributedEquivalence:
    def test_two_workers_bit_identical_to_serial(self, serial):
        result, metrics = run_distributed()
        assert_campaigns_equivalent(serial, result)
        assert metrics.value("repro_fabric_worker_joined_total") == 2.0
        assert metrics.value("repro_fabric_worker_lost_total") == 0.0
        assert metrics.value("repro_fabric_workers_connected") == 0.0
        assert metrics.value("repro_fabric_leases_active") == 0.0

    def test_single_worker_multiple_jobs(self, serial):
        metrics = MetricsRegistry()
        announce, threads = thread_fleet(1, jobs=2)
        executor = DistributedExecutor(
            expected_workers=1,
            announce=announce,
            retry=FAST_RETRY,
            obs=Observability(metrics=metrics),
            **LEASE,
        )
        result = make_campaign().run(executor)
        for thread in threads:
            thread.join(timeout=30)
        assert_campaigns_equivalent(serial, result)

    def test_checkpoint_stream_matches_parallel_format(self, tmp_path, serial):
        path = tmp_path / "fabric.jsonl"
        result, _ = run_distributed(checkpoint=path)
        assert_campaigns_equivalent(serial, result)
        header, records = read_checkpoint(path)
        assert header["kind"] == "campaign-checkpoint"
        assert len(records) == MESH.num_macs
        # The stream is the parallel tier's own format: a plain
        # ParallelExecutor resumes it to a complete, identical campaign.
        resumed = make_campaign().run(ParallelExecutor(jobs=2, resume=path))
        assert_campaigns_equivalent(serial, resumed)


# ----------------------------------------------------------------------
# Chaos: network fault modes
# ----------------------------------------------------------------------


class TestNetworkChaos:
    def test_heartbeat_stall_forfeits_lease_and_drops_stale_result(
        self, tmp_path, serial
    ):
        # One site stalls the agent past the lease deadline: renewal
        # stops and the result is held back. The lease must expire and
        # the shard requeue to the healthy worker; the stalled worker's
        # silence is a forfeiture, not a connection loss.
        chaos = ChaosSpec.build(
            {(1, 2): ChaosAction("stall", times=1, seconds=4.0)},
            state_dir=tmp_path,
        )
        result, metrics = run_distributed(chaos)
        assert_campaigns_equivalent(serial, result)
        assert metrics.value("repro_fabric_requeues_total") >= 1.0
        assert (
            metrics.value(
                "repro_shard_failures_total", kind="lease-expired"
            )
            >= 1.0
        )
        assert metrics.value("repro_fabric_worker_lost_total") == 0.0

    def test_duplicate_result_replay_is_dropped(self, tmp_path, serial):
        chaos = ChaosSpec.build(
            {(0, 3): ChaosAction("replay", times=1)}, state_dir=tmp_path
        )
        result, metrics = run_distributed(chaos)
        assert_campaigns_equivalent(serial, result)
        # >= not ==: on a starved host a heartbeat can slip past the
        # short test lease, and the expiry adds a second (equally
        # dropped) stale result on top of the injected duplicate.
        assert metrics.value("repro_fabric_stale_results_total") >= 1.0
        assert metrics.value("repro_fabric_worker_lost_total") == 0.0

    def test_frame_truncation_loses_worker_and_requeues(
        self, tmp_path, serial
    ):
        # A torn result frame severs the connection: the coordinator
        # counts a lost worker immediately (not a slow lease expiry),
        # forfeits its shards through the ladder, and the rest of the
        # fleet completes the campaign bit-identically.
        chaos = ChaosSpec.build(
            {(2, 2): ChaosAction("truncate", times=1)}, state_dir=tmp_path
        )
        result, metrics = run_distributed(chaos)
        assert_campaigns_equivalent(serial, result)
        assert metrics.value("repro_fabric_worker_lost_total") >= 1.0
        assert metrics.value("repro_fabric_requeues_total") >= 1.0
        assert (
            metrics.value("repro_shard_failures_total", kind="worker-lost")
            >= 1.0
        )

    def test_worker_kill_drop_forfeits_to_surviving_worker(
        self, tmp_path, serial
    ):
        # ``drop`` hard-kills the agent process (the remote analogue of
        # a pool worker exit), so it runs against real subprocesses: one
        # dies mid-lease, the survivor absorbs the forfeited shards.
        chaos = ChaosSpec.build(
            {(3, 1): ChaosAction("drop", times=1)}, state_dir=tmp_path
        )
        port = free_port()
        workers = [spawn_cli_worker(port), spawn_cli_worker(port)]
        metrics = MetricsRegistry()
        try:
            executor = DistributedExecutor(
                port=port,
                expected_workers=2,
                retry=FAST_RETRY,
                chaos=chaos,
                obs=Observability(metrics=metrics),
                **LEASE,
            )
            result = make_campaign().run(executor)
            assert_campaigns_equivalent(serial, result)
            assert metrics.value("repro_fabric_worker_lost_total") == 1.0
            assert metrics.value("repro_fabric_requeues_total") >= 1.0
            codes = [w.wait(timeout=30) for w in workers]
            # The dropped agent exits 1; the drained survivor exits 0.
            assert sorted(codes) == [0, 1]
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
                worker.wait(timeout=30)

    def test_poison_site_quarantined_across_the_wire(self, serial):
        # A persistently crashing site must be bisected down and
        # quarantined — not abort the distributed sweep.
        chaos = ChaosSpec.build(
            {(2, 3): ChaosAction("raise", times=None)}
        )
        result, metrics = run_distributed(chaos)
        assert result.quarantined_sites() == [(2, 3)]
        assert not result.is_complete
        failure = result.failures[0]
        assert failure.site == (2, 3)
        assert str(failure.kind) == "crash"
        reference = {
            (e.site.row, e.site.col): e for e in serial.experiments
        }
        for experiment in result.experiments:
            key = (experiment.site.row, experiment.site.col)
            assert experiment.classification == (
                reference[key].classification
            )
        assert metrics.value("repro_quarantined_sites_total") == 1.0

    def test_abort_mode_raises_typed_error(self):
        chaos = ChaosSpec.build(
            {(2, 3): ChaosAction("raise", times=None)}
        )
        metrics = MetricsRegistry()
        announce, threads = thread_fleet(2)
        executor = DistributedExecutor(
            expected_workers=2,
            announce=announce,
            retry=FAST_RETRY,
            on_error="abort",
            chaos=chaos,
            obs=Observability(metrics=metrics),
            **LEASE,
        )
        with pytest.raises(CampaignExecutionError):
            make_campaign().run(executor)
        for thread in threads:
            thread.join(timeout=30)


# ----------------------------------------------------------------------
# Coordinator shutdown and crash recovery
# ----------------------------------------------------------------------

_SIGTERM_DRIVER = """\
import sys, threading
from repro.core import (
    Campaign, CampaignInterrupted, ChaosAction, ChaosSpec,
    DistributedExecutor, GemmWorkload, WorkerAgent,
)
from repro.systolic import Dataflow, MeshConfig


def announce(host, port):
    for _ in range(2):
        agent = WorkerAgent(host, port, jobs=1,
                            reconnect_attempts=40, reconnect_delay=0.25)
        threading.Thread(target=agent.run, daemon=True).start()


# __main__ guard: the thread-hosted agents' spawn-context pool children
# re-import this module, and must not re-run the campaign.
if __name__ == "__main__":
    mesh = MeshConfig(rows=4, cols=4)
    workload = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)
    # Dilate every experiment so the campaign is reliably mid-flight
    # when the signal arrives.
    chaos = ChaosSpec.build(
        {(r, c): ChaosAction("sleep", times=None, seconds=0.08)
         for r in range(4) for c in range(4)}
    )
    executor = DistributedExecutor(
        expected_workers=2, announce=announce, checkpoint=sys.argv[1],
        lease_seconds=5.0, heartbeat_interval=0.5, chaos=chaos,
    )
    try:
        Campaign(mesh, workload).run(executor)
    except CampaignInterrupted as exc:
        assert exc.checkpoint is not None
        assert exc.remaining > 0
        sys.exit(42)
    sys.exit(0)
"""

_CRASH_DRIVER = """\
import sys
from repro.core import (
    Campaign, ChaosAction, ChaosSpec, DistributedExecutor, GemmWorkload,
)
from repro.systolic import Dataflow, MeshConfig

if __name__ == "__main__":
    mesh = MeshConfig(rows=4, cols=4)
    workload = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)
    chaos = ChaosSpec.build(
        {(r, c): ChaosAction("sleep", times=None, seconds=0.1)
         for r in range(4) for c in range(4)}
    )
    executor = DistributedExecutor(
        port=int(sys.argv[2]), expected_workers=2, checkpoint=sys.argv[1],
        lease_seconds=5.0, heartbeat_interval=0.5, chaos=chaos,
    )
    Campaign(mesh, workload).run(executor)
    sys.exit(0)
"""


def _driver_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return env


def _wait_for_checkpoint_progress(path, proc, min_lines=3, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and len(path.read_text().splitlines()) >= min_lines:
            return
        if proc.poll() is not None:
            return
        time.sleep(0.02)
    pytest.fail("campaign never made progress")


class TestCoordinatorShutdown:
    def test_sigterm_drains_to_resumable_checkpoint(self, tmp_path, serial):
        driver = tmp_path / "driver.py"
        driver.write_text(_SIGTERM_DRIVER)
        path = tmp_path / "campaign.jsonl"
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(path)],
            env=_driver_env(),
            cwd="/root/repo",
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for_checkpoint_progress(path, proc)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=90)
        finally:
            if proc.poll() is None:
                proc.kill()
                # Bounded: thread-hosted agents' pool children inherit
                # the driver's pipes and can outlive a hard kill.
                with contextlib.suppress(subprocess.TimeoutExpired):
                    proc.communicate(timeout=30)
        assert proc.returncode == 42, stderr.decode()
        header, records = read_checkpoint(path)
        assert header["kind"] == "campaign-checkpoint"
        assert 0 < len(records) < MESH.num_macs
        # The --resume hint holds: a plain parallel resume completes the
        # remainder, field-for-field identical to the serial reference.
        resumed = make_campaign().run(ParallelExecutor(jobs=2, resume=path))
        assert_campaigns_equivalent(serial, resumed)
        _, records = read_checkpoint(path)
        assert len(records) == MESH.num_macs

    def test_coordinator_kill_and_resume_with_live_workers(
        self, tmp_path, serial
    ):
        # Satellite: SIGKILL the coordinator mid-campaign while --stay
        # workers hold leases; resume the checkpoint on the same port;
        # the surviving fleet rejoins and the merged result is
        # field-for-field identical to the uninterrupted serial run.
        driver = tmp_path / "driver.py"
        driver.write_text(_CRASH_DRIVER)
        path = tmp_path / "campaign.jsonl"
        port = free_port()
        workers = [
            spawn_cli_worker(port, "--stay"),
            spawn_cli_worker(port, "--stay"),
        ]
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(path), str(port)],
            env=_driver_env(),
            cwd="/root/repo",
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for_checkpoint_progress(path, proc)
            proc.kill()  # SIGKILL: no drain, leases die with the process
            proc.communicate()
            _, records = read_checkpoint(path)
            assert 0 < len(records) < MESH.num_macs
            # Resume in-process on the same endpoint; the stay-workers'
            # reconnect loops find the new coordinator on their own.
            executor = DistributedExecutor(
                port=port,
                expected_workers=2,
                resume=path,
                retry=FAST_RETRY,
                **LEASE,
            )
            resumed = make_campaign().run(executor)
            assert_campaigns_equivalent(serial, resumed)
            # Exactly one record per site: restore deduped, the fleet
            # never re-executed completed work.
            _, records = read_checkpoint(path)
            assert len(records) == MESH.num_macs
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.send_signal(signal.SIGTERM)
            codes = []
            for worker in workers:
                try:
                    codes.append(worker.wait(timeout=30))
                except subprocess.TimeoutExpired:
                    worker.kill()
                    codes.append(worker.wait())
        # SIGTERM'd stay-workers leave gracefully (bye), exit 0.
        assert codes == [0, 0]
