"""Shared assertions for the executor-equivalence and checkpoint tests.

The determinism contract of :mod:`repro.core.executor` is *field-for-field*
equality with the serial reference — dataclass ``==`` is unusable here
because :class:`FaultPattern` holds numpy arrays, so the comparison is
spelled out explicitly.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.campaign import CampaignResult, ExperimentResult


def assert_experiments_equal(a: ExperimentResult, b: ExperimentResult) -> None:
    assert a.site == b.site
    assert a.classification == b.classification
    assert a.num_corrupted == b.num_corrupted
    assert a.max_abs_deviation == b.max_abs_deviation
    assert (a.pattern is None) == (b.pattern is None)
    if a.pattern is not None and b.pattern is not None:
        assert np.array_equal(a.pattern.mask, b.pattern.mask)
        assert np.array_equal(a.pattern.deviation, b.pattern.deviation)
        assert a.pattern.plan == b.pattern.plan
        assert a.pattern.geometry == b.pattern.geometry


def assert_campaigns_equivalent(
    reference: CampaignResult, candidate: CampaignResult
) -> None:
    """Field-for-field equality, modulo wall-clock time."""
    assert np.array_equal(reference.golden, candidate.golden)
    assert reference.plan == candidate.plan
    assert reference.geometry == candidate.geometry
    assert len(reference.experiments) == len(candidate.experiments)
    # Canonical ordering: sites appear in the same order on both sides.
    assert [e.site for e in reference.experiments] == [
        e.site for e in candidate.experiments
    ]
    for ref, cand in zip(reference.experiments, candidate.experiments):
        assert_experiments_equal(ref, cand)
    # The derived reductions the RQ benches consume.
    assert reference.census() == candidate.census()
    assert reference.sdc_rate() == candidate.sdc_rate()
    assert reference.dominant_class() is candidate.dominant_class()
    assert reference.is_single_class() == candidate.is_single_class()


def operand_digest(workload) -> str:
    """sha256 over the raw bytes of a workload's operand pair.

    Module-level so a process pool can ship it to a worker — the
    cross-process operand regression pins this digest from both sides of
    a fork.
    """
    digest = hashlib.sha256()
    for operand in workload.operands():
        digest.update(np.ascontiguousarray(operand).tobytes())
    return digest.hexdigest()
