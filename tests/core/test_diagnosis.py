"""Unit tests for fault diagnosis (the inverse predictor)."""

import numpy as np
import pytest

from repro.core.campaign import Campaign, ConvWorkload, GemmWorkload
from repro.core.classifier import PatternClass
from repro.core.diagnosis import diagnose
from repro.core.fault_patterns import extract_pattern
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


def _pattern(mask, dataflow=Dataflow.WEIGHT_STATIONARY):
    plan = plan_gemm_tiling(
        mask.shape[0], 4, mask.shape[1], MESH, dataflow
    )
    return extract_pattern(
        np.zeros(mask.shape, np.int64), np.where(mask, 1, 0), plan=plan
    )


class TestOsDiagnosis:
    def test_single_element_pins_the_mac(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 3] = True
        result = diagnose(_pattern(mask, Dataflow.OUTPUT_STATIONARY), MESH)
        assert result.exact
        assert result.candidate_macs == ((1, 3),)

    def test_multi_tile_pins_the_mac(self):
        mask = np.zeros((8, 8), dtype=bool)
        for r in (1, 5):
            for c in (3, 7):
                mask[r, c] = True
        result = diagnose(_pattern(mask, Dataflow.OUTPUT_STATIONARY), MESH)
        assert result.exact
        assert result.candidate_macs == ((1, 3),)


class TestWsDiagnosis:
    def test_column_yields_one_column_of_candidates(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 2] = True
        result = diagnose(_pattern(mask), MESH)
        assert not result.exact
        assert result.candidate_macs == tuple((r, 2) for r in range(4))
        assert result.num_candidates == 4

    def test_partial_column_still_diagnosable(self):
        # Data masking hid two rows; the column is still identified.
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 2] = mask[3, 2] = True
        result = diagnose(_pattern(mask), MESH)
        assert all(col == 2 for _, col in result.candidate_macs)


class TestSpecialCases:
    def test_masked_pattern_is_uninformative(self):
        result = diagnose(_pattern(np.zeros((4, 4), dtype=bool)), MESH)
        assert result.pattern_class is PatternClass.MASKED
        assert result.candidate_macs == ()

    def test_other_pattern_has_no_single_fault_explanation(self):
        mask = np.eye(4, dtype=bool)
        result = diagnose(_pattern(mask), MESH)
        assert result.pattern_class is PatternClass.OTHER
        assert result.candidate_macs == ()

    def test_requires_plan(self):
        pattern = extract_pattern(np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            diagnose(pattern, MESH)


class TestAgainstCampaigns:
    @pytest.mark.parametrize("dataflow", list(Dataflow))
    @pytest.mark.parametrize("size", [4, 8])
    def test_true_site_always_among_candidates(self, dataflow, size):
        result = Campaign(MESH, GemmWorkload.square(size, dataflow)).run()
        for experiment in result.experiments:
            diagnosis = diagnose(experiment.pattern, MESH)
            assert diagnosis.contains(
                experiment.site.row, experiment.site.col
            ), experiment.site

    def test_os_diagnosis_is_exact_for_all_sites(self):
        result = Campaign(
            MESH, GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY)
        ).run()
        for experiment in result.experiments:
            diagnosis = diagnose(experiment.pattern, MESH)
            assert diagnosis.exact
            assert diagnosis.candidate_macs == (
                (experiment.site.row, experiment.site.col),
            )

    def test_conv_diagnosis_pins_the_column(self):
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(6, (3, 3, 2, 3)), sites=[(1, 2)]
        ).run()
        diagnosis = diagnose(result.experiments[0].pattern, MESH)
        assert all(col == 2 for _, col in diagnosis.candidate_macs)
        assert diagnosis.contains(1, 2)
