"""Unit tests for the six-class fault-pattern taxonomy."""

import numpy as np
import pytest

from repro.core.classifier import PatternClass, classify_pattern
from repro.core.fault_patterns import extract_pattern
from repro.ops.im2col import ConvGeometry
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


def classify_gemm(mask: np.ndarray, m, k, n, dataflow=Dataflow.WEIGHT_STATIONARY):
    golden = np.zeros(mask.shape, dtype=np.int64)
    faulty = np.where(mask, 1, 0)
    plan = plan_gemm_tiling(m, k, n, MESH, dataflow)
    return classify_pattern(extract_pattern(golden, faulty, plan=plan))


class TestGemmClasses:
    def test_masked(self):
        mask = np.zeros((4, 4), dtype=bool)
        assert classify_gemm(mask, 4, 4, 4).pattern_class is PatternClass.MASKED

    def test_single_element(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = True
        result = classify_gemm(mask, 4, 4, 4)
        assert result.pattern_class is PatternClass.SINGLE_ELEMENT
        assert result.local_cells == ((1, 2),)
        assert result.corrupted_tiles == ((0, 0),)

    def test_single_element_multi_tile(self):
        mask = np.zeros((8, 8), dtype=bool)
        for r in (1, 5):
            for c in (2, 6):
                mask[r, c] = True
        result = classify_gemm(mask, 8, 8, 8, Dataflow.OUTPUT_STATIONARY)
        assert result.pattern_class is PatternClass.SINGLE_ELEMENT_MULTI_TILE
        assert result.local_cells == ((1, 2),)
        assert len(result.corrupted_tiles) == 4

    def test_single_column(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 3] = True
        assert (
            classify_gemm(mask, 4, 4, 4).pattern_class
            is PatternClass.SINGLE_COLUMN
        )

    def test_partial_column_is_still_single_column(self):
        # Data masking can hide some rows; structure is still one column.
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 3] = mask[2, 3] = True
        assert (
            classify_gemm(mask, 4, 4, 4).pattern_class
            is PatternClass.SINGLE_COLUMN
        )

    def test_single_column_multi_tile(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:, 1] = True
        mask[:, 5] = True
        assert (
            classify_gemm(mask, 8, 8, 8).pattern_class
            is PatternClass.SINGLE_COLUMN_MULTI_TILE
        )

    def test_row_corruption_is_single_row(self):
        # The IS dataflow's signature (extension beyond the paper's six).
        mask = np.zeros((4, 4), dtype=bool)
        mask[2, :] = True
        assert (
            classify_gemm(mask, 4, 4, 4).pattern_class
            is PatternClass.SINGLE_ROW
        )

    def test_multi_tile_row_corruption(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, :] = True
        mask[6, :] = True
        assert (
            classify_gemm(mask, 8, 8, 8).pattern_class
            is PatternClass.SINGLE_ROW_MULTI_TILE
        )

    def test_diagonal_is_other(self):
        # No SSF produces a diagonal; the taxonomy must not absorb it.
        mask = np.eye(4, dtype=bool)
        assert classify_gemm(mask, 4, 4, 4).pattern_class is PatternClass.OTHER

    def test_two_unrelated_columns_is_other(self):
        # Columns 1 and 2 have different local offsets: outside taxonomy.
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 1] = True
        mask[:, 2] = True
        assert classify_gemm(mask, 4, 4, 4).pattern_class is PatternClass.OTHER

    def test_plan_required(self):
        pattern = extract_pattern(np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            classify_pattern(pattern)


class TestConvClasses:
    def _classify(self, corrupt_channels):
        g = ConvGeometry(n=1, c=1, h=5, w=5, k=4, r=2, s=2)
        golden = np.zeros((1, 4, 4, 4), dtype=np.int64)
        faulty = golden.copy()
        for ch in corrupt_channels:
            faulty[0, ch] = 1
        plan = plan_gemm_tiling(g.gemm_m, g.gemm_k, g.gemm_n, MESH,
                                Dataflow.WEIGHT_STATIONARY)
        return classify_pattern(
            extract_pattern(golden, faulty, plan=plan, geometry=g)
        )

    def test_masked(self):
        assert self._classify([]).pattern_class is PatternClass.MASKED

    def test_single_channel(self):
        result = self._classify([2])
        assert result.pattern_class is PatternClass.SINGLE_CHANNEL
        assert result.corrupted_channels == (2,)

    def test_multi_channel(self):
        result = self._classify([0, 3])
        assert result.pattern_class is PatternClass.MULTI_CHANNEL
        assert result.corrupted_channels == (0, 3)


class TestEnum:
    def test_string_names_match_paper(self):
        assert str(PatternClass.SINGLE_ELEMENT) == "single-element"
        assert str(PatternClass.SINGLE_COLUMN_MULTI_TILE) == (
            "single-column multi-tile"
        )
        assert str(PatternClass.MULTI_CHANNEL) == "multi-channel"

    def test_ten_classes_total(self):
        # Six paper classes + MASKED + OTHER + the two IS extension
        # classes (single-row and its multi-tile form).
        assert len(PatternClass) == 10
