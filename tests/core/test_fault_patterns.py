"""Unit tests for fault-pattern extraction and queries."""

import numpy as np
import pytest

from repro.core.fault_patterns import FaultPattern, extract_pattern
from repro.ops.im2col import ConvGeometry
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig


def _plan(m, k, n, dataflow=Dataflow.WEIGHT_STATIONARY, mesh=None):
    return plan_gemm_tiling(m, k, n, mesh or MeshConfig(4, 4), dataflow)


class TestExtraction:
    def test_identical_outputs_are_masked(self):
        golden = np.arange(12).reshape(3, 4)
        pattern = extract_pattern(golden, golden.copy(), plan=_plan(3, 4, 4))
        assert not pattern.corrupted
        assert pattern.num_corrupted == 0
        assert pattern.corruption_rate == 0.0
        assert pattern.max_abs_deviation == 0

    def test_diff_positions_and_magnitude(self):
        golden = np.zeros((3, 4), dtype=np.int64)
        faulty = golden.copy()
        faulty[1, 2] = 7
        faulty[2, 0] = -3
        pattern = extract_pattern(golden, faulty, plan=_plan(3, 4, 4))
        assert pattern.num_corrupted == 2
        assert pattern.corrupted_cells() == [(1, 2), (2, 0)]
        assert pattern.max_abs_deviation == 7
        assert pattern.deviation[1, 2] == 7
        assert pattern.deviation[2, 0] == -3

    def test_rows_and_columns(self):
        golden = np.zeros((4, 4), dtype=np.int64)
        faulty = golden.copy()
        faulty[:, 2] = 5
        pattern = extract_pattern(golden, faulty, plan=_plan(4, 4, 4))
        assert pattern.corrupted_columns() == (2,)
        assert pattern.corrupted_rows() == (0, 1, 2, 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            extract_pattern(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_mask_deviation_coherence_enforced(self):
        with pytest.raises(ValueError):
            FaultPattern(mask=np.zeros((2, 2), bool), deviation=np.zeros((3, 3)))


class TestConvPatterns:
    def _conv_pattern(self):
        g = ConvGeometry(n=1, c=1, h=5, w=5, k=3, r=2, s=2)
        golden = np.zeros((1, 3, 4, 4), dtype=np.int64)
        faulty = golden.copy()
        faulty[0, 1] = 9  # corrupt the whole of channel 1
        plan = _plan(g.gemm_m, g.gemm_k, g.gemm_n)
        return extract_pattern(golden, faulty, plan=plan, geometry=g), g

    def test_is_conv(self):
        pattern, _ = self._conv_pattern()
        assert pattern.is_conv

    def test_corrupted_channels(self):
        pattern, _ = self._conv_pattern()
        assert pattern.corrupted_channels() == (1,)

    def test_channel_mask(self):
        pattern, _ = self._conv_pattern()
        assert pattern.channel_mask(1).all()
        assert not pattern.channel_mask(0).any()

    def test_gemm_view_maps_channel_to_column(self):
        pattern, g = self._conv_pattern()
        gemm = pattern.gemm_mask()
        assert gemm.shape == (g.gemm_m, g.k)
        assert gemm[:, 1].all()
        assert not gemm[:, [0, 2]].any()

    def test_channel_queries_require_conv(self):
        pattern = extract_pattern(
            np.zeros((2, 2)), np.zeros((2, 2)), plan=_plan(2, 2, 2)
        )
        with pytest.raises(ValueError):
            pattern.corrupted_channels()
        with pytest.raises(ValueError):
            pattern.channel_mask(0)
