"""Chaos harness for the resilient campaign runtime.

Fault injection for the fault injector: every failure mode the runtime
claims to survive — worker raises, hard exits (pool collapse), hangs
(watchdog), corrupt payloads, SIGINT/SIGTERM — is injected on schedule
via :mod:`repro.core.chaos`, and the campaign is asserted to either heal
(transient faults), degrade gracefully (persistent faults are bisected
down to the poison site and quarantined while everything else completes,
bit-identical to serial), or abort with the right taxonomy error.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import (
    Campaign,
    CampaignInterrupted,
    ChaosAction,
    ChaosError,
    ChaosSpec,
    CheckpointCorrupt,
    FailureKind,
    FailureRecord,
    GemmWorkload,
    ParallelExecutor,
    PoisonSite,
    RetryPolicy,
    ShardCrash,
    ShardTimeout,
    failure_from_record,
    failure_record,
    is_failure_record,
    read_checkpoint,
)
from repro.core.executor import _validate_shard
from repro.core.reports import campaign_summary
from repro.core.serialize import campaign_to_dict
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import (
    assert_campaigns_equivalent,
    assert_experiments_equal,
)

MESH = MeshConfig(rows=4, cols=4)
WORKLOAD = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)

#: Fast, deterministic backoff so chaos tests stay quick.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_cap=0.05)


def make_campaign(**kwargs) -> Campaign:
    return Campaign(MESH, WORKLOAD, **kwargs)


@pytest.fixture(scope="module")
def serial():
    """The reference result of an unperturbed serial run."""
    return make_campaign().run()


def run_chaotic(chaos: ChaosSpec, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("retry", FAST_RETRY)
    return make_campaign().run(ParallelExecutor(chaos=chaos, **kwargs))


def assert_degraded_to(result, serial, quarantined: list[tuple[int, int]]):
    """Exactly ``quarantined`` was given up on; every other site is
    bit-identical to the serial reference."""
    assert result.quarantined_sites() == quarantined
    assert not result.is_complete
    ran = [site for site in make_campaign().sites if site not in quarantined]
    assert [
        (e.site.row, e.site.col) for e in result.experiments
    ] == ran
    for row, col in ran:
        assert_experiments_equal(
            serial.result_at(row, col), result.result_at(row, col)
        )


# ----------------------------------------------------------------------
# Policy / taxonomy units
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=0.05, backoff_factor=2.0,
            backoff_cap=0.15,
        )
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.15)  # capped
        assert policy.delay(4) == pytest.approx(0.15)
        # Jitter-free: the schedule is a pure function of the attempt.
        assert [policy.delay(n) for n in (1, 2, 3)] == [
            policy.delay(n) for n in (1, 2, 3)
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)

    def test_zero_retries_means_one_attempt(self):
        assert RetryPolicy(max_retries=0).max_retries == 0


class TestFailureRecordCodec:
    FAILURE = FailureRecord(
        row=2, col=3, kind=FailureKind.TIMEOUT, attempts=3,
        error="shard exceeded the 0.75s watchdog deadline",
    )

    def test_roundtrip_through_json(self):
        record = json.loads(json.dumps(failure_record(self.FAILURE)))
        assert is_failure_record(record)
        assert failure_from_record(record) == self.FAILURE

    def test_experiment_records_are_not_failure_records(self, serial):
        from repro.core.serialize import experiment_record

        assert not is_failure_record(
            experiment_record(serial.experiments[0])
        )

    def test_describe_names_site_and_kind(self):
        text = self.FAILURE.describe()
        assert "MAC(2,3)" in text
        assert "timeout" in text
        assert "3 attempt(s)" in text


class TestChaosSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosAction("explode")

    def test_bounded_action_requires_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            ChaosSpec.build({(0, 0): ChaosAction("raise", times=1)})

    def test_unbounded_action_needs_no_state_dir(self):
        spec = ChaosSpec.build({(0, 0): ChaosAction("raise", times=None)})
        assert spec.action_for((0, 0)) is not None
        assert spec.action_for((1, 1)) is None

    def test_bounded_firing_counts_persist_on_disk(self, tmp_path):
        spec = ChaosSpec.build(
            {(1, 2): ChaosAction("corrupt", times=2)}, state_dir=tmp_path
        )
        assert spec.fire((1, 2)) is True
        assert spec.fire((1, 2)) is True
        assert spec.fire((1, 2)) is False  # healed after 2 firings
        assert spec.fire((3, 3)) is False  # unscheduled site never fires
        # The counter is the file size: crash-proof cross-process state.
        counter = tmp_path / "site-1-2-corrupt.count"
        assert counter.stat().st_size == 2

    def test_raise_action_throws_chaos_error(self, tmp_path):
        spec = ChaosSpec.build(
            {(0, 1): ChaosAction("raise", times=1)}, state_dir=tmp_path
        )
        with pytest.raises(ChaosError, match=r"\(0, 1\)"):
            spec.fire((0, 1))
        assert spec.fire((0, 1)) is False  # consumed


class TestShardValidation:
    def test_accepts_sound_payload(self, serial):
        sites = [(0, 0), (0, 1)]
        payload = ([serial.result_at(r, c) for r, c in sites], [])
        assert _validate_shard(payload, sites) is None

    def test_rejects_wrong_length_and_type(self, serial):
        assert "malformed" in _validate_shard(None, [(0, 0)])
        # The pre-obs payload shape (a bare results list) is malformed now.
        assert "malformed" in _validate_shard([], [(0, 0)])
        assert "malformed" in _validate_shard(([], "events"), [(0, 0)])
        assert "malformed" in _validate_shard(([], []), [(0, 0)])
        problem = _validate_shard(([{"mangled": True}], []), [(0, 0)])
        assert "not an experiment result" in problem

    def test_rejects_mismatched_site(self, serial):
        problem = _validate_shard(([serial.result_at(3, 3)], []), [(0, 0)])
        assert "mismatched site" in problem


# ----------------------------------------------------------------------
# Crash recovery (worker raises)
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_transient_crash_heals_to_full_equivalence(
        self, tmp_path, serial
    ):
        chaos = ChaosSpec.build(
            {(1, 2): ChaosAction("raise", times=2)}, state_dir=tmp_path
        )
        result = run_chaotic(chaos)
        assert result.is_complete
        assert_campaigns_equivalent(serial, result)

    def test_persistent_crash_quarantines_exactly_that_site(
        self, tmp_path, serial
    ):
        path = tmp_path / "campaign.jsonl"
        chaos = ChaosSpec.build({(1, 2): ChaosAction("raise", times=None)})
        result = run_chaotic(chaos, checkpoint=path)
        assert_degraded_to(result, serial, [(1, 2)])
        failure = result.failures[0]
        assert failure.kind is FailureKind.CRASH
        assert failure.attempts == FAST_RETRY.max_retries + 1
        assert "ChaosError" in failure.error
        # The quarantine is a first-class record in the checkpoint stream.
        _, records = read_checkpoint(path)
        quarantines = [r for r in records if is_failure_record(r)]
        assert len(quarantines) == 1
        assert quarantines[0]["site"] == {"row": 1, "col": 2}
        assert len(records) == MESH.num_macs  # 15 experiments + 1 failure

    def test_quarantine_is_sticky_across_resume(self, tmp_path, serial):
        path = tmp_path / "campaign.jsonl"
        chaos = ChaosSpec.build({(2, 2): ChaosAction("raise", times=None)})
        run_chaotic(chaos, checkpoint=path)
        before = path.read_text()
        # Resume WITHOUT chaos: the poison site must not be re-executed.
        resumed = make_campaign().run(ParallelExecutor(jobs=2, resume=path))
        assert_degraded_to(resumed, serial, [(2, 2)])
        assert resumed.failures[0].kind is FailureKind.CRASH
        assert path.read_text() == before  # nothing re-ran or re-recorded

    def test_two_poison_sites_both_isolated(self, tmp_path, serial):
        chaos = ChaosSpec.build(
            {
                (0, 3): ChaosAction("raise", times=None),
                (3, 0): ChaosAction("raise", times=None),
            }
        )
        result = run_chaotic(chaos)
        assert_degraded_to(result, serial, [(0, 3), (3, 0)])

    def test_degraded_result_serializes_with_failures(self, tmp_path):
        chaos = ChaosSpec.build({(1, 1): ChaosAction("raise", times=None)})
        result = run_chaotic(chaos)
        data = campaign_to_dict(result)
        assert len(data["failures"]) == 1
        assert data["failures"][0]["site"] == {"row": 1, "col": 1}
        assert len(data["experiments"]) == MESH.num_macs - 1
        summary = campaign_summary(result)
        assert "quarantined : 1 site(s) [(1,1)]" in summary


# ----------------------------------------------------------------------
# Abort policy
# ----------------------------------------------------------------------


class TestAbortPolicy:
    def test_multi_site_shard_raises_shard_crash(self):
        chaos = ChaosSpec.build({(1, 1): ChaosAction("raise", times=None)})
        with pytest.raises(ShardCrash, match="2 sites"):
            run_chaotic(chaos, on_error="abort")

    def test_single_site_shard_names_the_poison_site(self):
        chaos = ChaosSpec.build({(1, 1): ChaosAction("raise", times=None)})
        with pytest.raises(PoisonSite, match=r"MAC\(1,1\)"):
            # shards_per_worker=8 on 16 sites -> single-site shards.
            run_chaotic(chaos, on_error="abort", shards_per_worker=8)

    def test_hang_raises_shard_timeout(self):
        chaos = ChaosSpec.build(
            {(0, 1): ChaosAction("hang", times=None, seconds=30.0)}
        )
        with pytest.raises(ShardTimeout, match="watchdog"):
            run_chaotic(
                chaos,
                on_error="abort",
                shard_timeout=0.75,
                retry=RetryPolicy(max_retries=0),
            )

    def test_on_error_string_is_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=2, on_error="explode")
        with pytest.raises(ValueError, match="not both"):
            ParallelExecutor(jobs=2, max_retries=1, retry=FAST_RETRY)


# ----------------------------------------------------------------------
# Pool collapse (worker exits hard) and watchdog (worker hangs)
# ----------------------------------------------------------------------


class TestPoolCollapse:
    def test_transient_hard_exit_heals(self, tmp_path, serial):
        chaos = ChaosSpec.build(
            {(2, 3): ChaosAction("exit", times=1)}, state_dir=tmp_path
        )
        result = run_chaotic(chaos)
        assert result.is_complete
        assert_campaigns_equivalent(serial, result)

    def test_persistent_hard_exit_quarantines_the_culprit(
        self, tmp_path, serial
    ):
        chaos = ChaosSpec.build({(2, 3): ChaosAction("exit", times=None)})
        result = run_chaotic(chaos)
        assert_degraded_to(result, serial, [(2, 3)])
        assert result.failures[0].kind is FailureKind.POOL_BROKEN


class TestWatchdog:
    def test_transient_hang_is_killed_and_retried(self, tmp_path, serial):
        chaos = ChaosSpec.build(
            {(0, 1): ChaosAction("hang", times=1, seconds=30.0)},
            state_dir=tmp_path,
        )
        result = run_chaotic(chaos, shard_timeout=0.75)
        assert result.is_complete
        assert_campaigns_equivalent(serial, result)

    def test_persistent_hang_quarantines_with_timeout_kind(
        self, tmp_path, serial
    ):
        chaos = ChaosSpec.build(
            {(0, 1): ChaosAction("hang", times=None, seconds=30.0)}
        )
        result = run_chaotic(
            chaos,
            shard_timeout=0.75,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01),
        )
        assert_degraded_to(result, serial, [(0, 1)])
        failure = result.failures[0]
        assert failure.kind is FailureKind.TIMEOUT
        assert "watchdog" in failure.error


class TestCorruptPayload:
    def test_transient_corruption_is_retried(self, tmp_path, serial):
        chaos = ChaosSpec.build(
            {(3, 0): ChaosAction("corrupt", times=2)}, state_dir=tmp_path
        )
        result = run_chaotic(chaos)
        assert result.is_complete
        assert_campaigns_equivalent(serial, result)

    def test_persistent_corruption_quarantines(self, tmp_path, serial):
        chaos = ChaosSpec.build({(3, 0): ChaosAction("corrupt", times=None)})
        result = run_chaotic(chaos)
        assert_degraded_to(result, serial, [(3, 0)])
        failure = result.failures[0]
        assert failure.kind is FailureKind.CORRUPT_RESULT
        assert "not an experiment result" in failure.error


# ----------------------------------------------------------------------
# Checkpoint durability and hygiene (satellites)
# ----------------------------------------------------------------------


class TestCheckpointDurability:
    def test_record_batches_are_fsynced(self, tmp_path, monkeypatch):
        synced: list[int] = []
        real_fsync = os.fsync

        def counting_fsync(fd: int) -> None:
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        path = tmp_path / "campaign.jsonl"
        make_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))
        # At least: header, one sync per record batch, one on close.
        assert len(synced) >= 3
        _, records = read_checkpoint(path)
        assert len(records) == MESH.num_macs

    def test_torn_header_is_refused_for_appending(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text('{"schema_version": 1, "kind": "campaign-ch')
        with pytest.raises(CheckpointCorrupt, match=str(path)):
            make_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))

    def test_alien_header_is_refused_for_appending(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(CheckpointCorrupt, match="header"):
            make_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))

    def test_torn_trailing_line_is_healed_before_appending(
        self, tmp_path, serial
    ):
        path = tmp_path / "campaign.jsonl"
        make_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))
        lines = path.read_text().splitlines()
        # Keep the header + 3 records, then a torn mid-write record with
        # no trailing newline — the classic kill-mid-write artefact.
        path.write_text("\n".join(lines[:4]) + "\n" + '{"site": {"ro')
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint record"):
            resumed = make_campaign().run(
                ParallelExecutor(jobs=2, resume=path)
            )
        assert_campaigns_equivalent(serial, resumed)
        # The torn line was newline-terminated, so no record after it got
        # concatenated onto it: the stream parses to one record per site.
        with pytest.warns(RuntimeWarning):
            _, records = read_checkpoint(path)
        assert len(records) == MESH.num_macs

    def test_duplicate_site_records_warn_keep_last(self, tmp_path, serial):
        path = tmp_path / "campaign.jsonl"
        make_campaign().run(ParallelExecutor(jobs=2, checkpoint=path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines) + "\n" + lines[1] + "\n")
        with pytest.warns(RuntimeWarning, match="duplicate checkpoint record"):
            resumed = make_campaign().run(
                ParallelExecutor(jobs=2, resume=path)
            )
        assert_campaigns_equivalent(serial, resumed)


# ----------------------------------------------------------------------
# Graceful shutdown (SIGINT / SIGTERM)
# ----------------------------------------------------------------------

_DRIVER = """\
import sys
from repro.core import (
    Campaign, CampaignInterrupted, ChaosAction, ChaosSpec, GemmWorkload,
    ParallelExecutor,
)
from repro.systolic import Dataflow, MeshConfig

mesh = MeshConfig(rows=4, cols=4)
workload = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)
# Dilate every experiment so the campaign is reliably mid-flight when the
# signal arrives.
chaos = ChaosSpec.build(
    {(r, c): ChaosAction("sleep", times=None, seconds=0.08)
     for r in range(4) for c in range(4)}
)
executor = ParallelExecutor(jobs=2, checkpoint=sys.argv[1], chaos=chaos)
try:
    Campaign(mesh, workload).run(executor)
except CampaignInterrupted as exc:
    assert exc.checkpoint is not None
    assert exc.remaining > 0
    sys.exit(42)
sys.exit(0)
"""


class TestGracefulShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_exits_resumable(self, tmp_path, serial, signum):
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        path = tmp_path / "campaign.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(path)],
            env=env,
            cwd="/root/repo",
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            # Wait until real progress is on disk, then interrupt.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if path.exists() and len(path.read_text().splitlines()) >= 3:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("campaign never made progress")
            proc.send_signal(signum)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 42, stderr.decode()
        # The stream survived the interrupt in parseable form: header +
        # some-but-not-all records.
        header, records = read_checkpoint(path)
        assert header["kind"] == "campaign-checkpoint"
        assert 0 < len(records) < MESH.num_macs
        # Resume (no chaos) completes the remainder, field-for-field
        # identical to the uninterrupted serial reference.
        resumed = make_campaign().run(ParallelExecutor(jobs=2, resume=path))
        assert_campaigns_equivalent(serial, resumed)
        _, records = read_checkpoint(path)
        assert len(records) == MESH.num_macs  # exactly one record per site

    def test_interrupted_error_reports_progress(self):
        exc = CampaignInterrupted(
            signal.SIGINT, checkpoint=None, completed=6, remaining=10
        )
        assert "SIGINT" in str(exc)
        assert "6 site(s)" in str(exc)
        assert isinstance(exc, KeyboardInterrupt)
