"""Unit tests for the analytical fault-pattern predictor."""

import numpy as np
import pytest

from repro.core.campaign import Campaign, ConvWorkload, GemmWorkload
from repro.core.classifier import PatternClass
from repro.core.predictor import predict_class, predict_pattern
from repro.faults.sites import FaultSite
from repro.ops.im2col import ConvGeometry
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


class TestOsPrediction:
    def test_untiled_single_element(self):
        plan = plan_gemm_tiling(4, 4, 4, MESH, Dataflow.OUTPUT_STATIONARY)
        pred = predict_pattern(FaultSite(1, 2), plan)
        assert pred.pattern_class is PatternClass.SINGLE_ELEMENT
        assert pred.num_cells == 1
        assert pred.support[1, 2]

    def test_tiled_multi_element(self):
        plan = plan_gemm_tiling(8, 8, 8, MESH, Dataflow.OUTPUT_STATIONARY)
        pred = predict_pattern(FaultSite(1, 2), plan)
        assert pred.pattern_class is PatternClass.SINGLE_ELEMENT_MULTI_TILE
        coords = set(zip(*np.where(pred.support)))
        assert coords == {(r, c) for r in (1, 5) for c in (2, 6)}

    def test_fault_outside_output_is_masked(self):
        plan = plan_gemm_tiling(2, 4, 2, MESH, Dataflow.OUTPUT_STATIONARY)
        pred = predict_pattern(FaultSite(3, 3), plan)
        assert pred.pattern_class is PatternClass.MASKED
        assert pred.num_cells == 0

    def test_ragged_edge_tiles(self):
        plan = plan_gemm_tiling(6, 4, 6, MESH, Dataflow.OUTPUT_STATIONARY)
        pred = predict_pattern(FaultSite(3, 3), plan)
        # mesh (3,3) only exists in the first (4-wide) tiles.
        assert set(zip(*np.where(pred.support))) == {(3, 3)}


class TestWsPrediction:
    def test_untiled_single_column(self):
        plan = plan_gemm_tiling(4, 4, 4, MESH, Dataflow.WEIGHT_STATIONARY)
        pred = predict_pattern(FaultSite(0, 2), plan)
        assert pred.pattern_class is PatternClass.SINGLE_COLUMN
        assert pred.support[:, 2].all()
        assert pred.num_cells == 4

    def test_row_position_is_irrelevant(self):
        plan = plan_gemm_tiling(4, 4, 4, MESH, Dataflow.WEIGHT_STATIONARY)
        by_row = [
            predict_pattern(FaultSite(r, 2), plan).support for r in range(4)
        ]
        for support in by_row[1:]:
            assert np.array_equal(support, by_row[0])

    def test_tiled_multi_column(self):
        plan = plan_gemm_tiling(8, 8, 8, MESH, Dataflow.WEIGHT_STATIONARY)
        pred = predict_pattern(FaultSite(0, 1), plan)
        assert pred.pattern_class is PatternClass.SINGLE_COLUMN_MULTI_TILE
        assert pred.support[:, 1].all() and pred.support[:, 5].all()
        assert pred.num_cells == 16

    def test_unused_column_is_masked(self):
        plan = plan_gemm_tiling(4, 4, 2, MESH, Dataflow.WEIGHT_STATIONARY)
        assert (
            predict_pattern(FaultSite(0, 3), plan).pattern_class
            is PatternClass.MASKED
        )


class TestConvPrediction:
    def test_single_channel(self):
        g = ConvGeometry(n=1, c=2, h=6, w=6, k=3, r=3, s=3)
        plan = plan_gemm_tiling(g.gemm_m, g.gemm_k, g.gemm_n, MESH,
                                Dataflow.WEIGHT_STATIONARY)
        pred = predict_pattern(FaultSite(0, 1), plan, geometry=g)
        assert pred.pattern_class is PatternClass.SINGLE_CHANNEL
        assert pred.channels == (1,)
        conv_support = pred.conv_support(g)
        assert conv_support.shape == (1, 3, 4, 4)
        assert conv_support[:, 1].all()

    def test_multi_channel(self):
        g = ConvGeometry(n=1, c=2, h=6, w=6, k=6, r=3, s=3)
        plan = plan_gemm_tiling(g.gemm_m, g.gemm_k, g.gemm_n, MESH,
                                Dataflow.WEIGHT_STATIONARY)
        pred = predict_pattern(FaultSite(2, 0), plan, geometry=g)
        assert pred.pattern_class is PatternClass.MULTI_CHANNEL
        assert pred.channels == (0, 4)

    def test_predict_class_shortcut(self):
        g = ConvGeometry(n=1, c=2, h=6, w=6, k=3, r=3, s=3)
        plan = plan_gemm_tiling(g.gemm_m, g.gemm_k, g.gemm_n, MESH,
                                Dataflow.WEIGHT_STATIONARY)
        assert predict_class(FaultSite(0, 0), plan, geometry=g) is (
            PatternClass.SINGLE_CHANNEL
        )


class TestPredictorVsSimulation:
    """With ones operands + disagreeing stuck bit, prediction is exact."""

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    @pytest.mark.parametrize("size", [4, 7, 10])
    def test_gemm_exact_agreement(self, dataflow, size):
        campaign = Campaign(MESH, GemmWorkload.square(size, dataflow))
        result = campaign.run()
        for experiment in result.experiments:
            pred = predict_pattern(experiment.site, result.plan)
            assert pred.pattern_class is experiment.pattern_class, experiment.site
            assert np.array_equal(
                pred.support, experiment.pattern.gemm_mask()
            ), experiment.site

    def test_conv_exact_agreement(self):
        campaign = Campaign(MESH, ConvWorkload.paper_kernel(6, (3, 3, 2, 6)))
        result = campaign.run()
        for experiment in result.experiments:
            pred = predict_pattern(
                experiment.site, result.plan, geometry=result.geometry
            )
            assert pred.pattern_class is experiment.pattern_class
            assert pred.channels == experiment.classification.corrupted_channels
