"""Observability must not perturb results: armed == plain, bit for bit.

The contract pinned here is the one ``docs/observability.md`` promises:
enabling any combination of trace/metrics/progress leaves the merged
:class:`CampaignResult` field-for-field identical to an unobserved run —
only the observational attachments (``telemetry``, the recorder's event
buffer) differ. Covered for both the serial path and the sharded pool.
"""

from __future__ import annotations

import io
import os

from repro.core import Campaign, GemmWorkload, ParallelExecutor, SerialExecutor
from repro.obs import MetricsRegistry, Observability, ProgressReporter, TraceRecorder
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import assert_campaigns_equivalent

MESH = MeshConfig(rows=4, cols=4)
WORKLOAD = GemmWorkload.square(8, Dataflow.OUTPUT_STATIONARY)


def _armed_obs() -> Observability:
    return Observability(
        recorder=TraceRecorder(),
        metrics=MetricsRegistry(),
        progress=ProgressReporter(stream=io.StringIO(), min_interval=0.0),
    )


class TestSerialEquivalence:
    def test_armed_serial_matches_plain_serial(self):
        plain = Campaign(MESH, WORKLOAD).run(SerialExecutor())
        armed = Campaign(MESH, WORKLOAD).run(SerialExecutor(obs=_armed_obs()))
        assert_campaigns_equivalent(plain, armed)

    def test_plain_run_has_no_telemetry(self):
        result = Campaign(MESH, WORKLOAD).run(SerialExecutor())
        assert result.telemetry is None

    def test_armed_run_attaches_telemetry(self):
        obs = _armed_obs()
        result = Campaign(MESH, WORKLOAD).run(SerialExecutor(obs=obs))
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry["sites"] == 16
        assert telemetry["sites_completed"] == 16
        assert telemetry["retries"] == 0
        assert telemetry["quarantined"] == 0
        assert telemetry["elapsed_seconds"] > 0.0

    def test_serial_spans_cover_the_experiment_hierarchy(self):
        obs = _armed_obs()
        Campaign(MESH, WORKLOAD).run(SerialExecutor(obs=obs))
        names = {event["name"] for event in obs.recorder.events()}
        assert {"campaign.execute", "campaign.golden", "experiment"} <= names
        assert {"experiment.simulate", "experiment.classify"} <= names


class TestParallelEquivalence:
    def test_armed_parallel_matches_plain_serial(self):
        plain = Campaign(MESH, WORKLOAD).run(SerialExecutor())
        armed = Campaign(MESH, WORKLOAD).run(
            ParallelExecutor(jobs=2, obs=_armed_obs())
        )
        assert_campaigns_equivalent(plain, armed)

    def test_armed_parallel_matches_plain_parallel(self):
        plain = Campaign(MESH, WORKLOAD).run(ParallelExecutor(jobs=2))
        assert plain.telemetry is None
        armed = Campaign(MESH, WORKLOAD).run(
            ParallelExecutor(jobs=2, obs=_armed_obs())
        )
        assert armed.telemetry is not None
        assert_campaigns_equivalent(plain, armed)

    def test_worker_spans_reach_the_parent_recorder(self):
        obs = _armed_obs()
        Campaign(MESH, WORKLOAD).run(ParallelExecutor(jobs=2, obs=obs))
        events = obs.recorder.events()
        names = {event["name"] for event in events}
        assert "shard.run" in names  # recorded worker-side, ingested here
        assert "experiment" in names
        pids = {event["pid"] for event in events}
        assert os.getpid() in pids
        assert len(pids) > 1  # at least one worker pid besides the parent

    def test_parallel_telemetry_counts_all_sites(self):
        obs = _armed_obs()
        result = Campaign(MESH, WORKLOAD).run(ParallelExecutor(jobs=2, obs=obs))
        assert result.telemetry["sites_completed"] == len(result.experiments)
        assert obs.metrics.value("repro_sites_total") == 16.0

    def test_trace_only_bundle_leaves_telemetry_unset(self):
        # Telemetry derives from metrics; a trace-only bundle records
        # spans but attaches no summary.
        obs = Observability(recorder=TraceRecorder())
        result = Campaign(MESH, WORKLOAD).run(ParallelExecutor(jobs=2, obs=obs))
        assert result.telemetry is None
        assert len(obs.recorder.events()) > 0
