"""Checkpoint/resume behaviour of the parallel campaign executor.

Simulates the interesting failure mode — a campaign killed mid-shard,
leaving a truncated (possibly torn) JSONL stream — and asserts the resumed
campaign is indistinguishable from an uninterrupted one.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Campaign,
    ConvWorkload,
    FaultSpec,
    GemmWorkload,
    ParallelExecutor,
    experiment_from_record,
    experiment_record,
    read_checkpoint,
)
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import (
    assert_campaigns_equivalent,
    assert_experiments_equal,
)

MESH = MeshConfig(rows=4, cols=4)
WORKLOAD = GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY)


def make_campaign(**kwargs) -> Campaign:
    return Campaign(MESH, WORKLOAD, **kwargs)


@pytest.fixture(scope="module")
def uninterrupted():
    """The reference result of an uninterrupted run."""
    return make_campaign().run()


def run_with_checkpoint(path, jobs: int = 2):
    return make_campaign().run(ParallelExecutor(jobs=jobs, checkpoint=path))


class TestCheckpointStream:
    def test_stream_has_header_plus_one_record_per_site(
        self, tmp_path, uninterrupted
    ):
        path = tmp_path / "campaign.jsonl"
        result = run_with_checkpoint(path)
        assert_campaigns_equivalent(uninterrupted, result)
        header, records = read_checkpoint(path)
        assert header["num_sites"] == MESH.num_macs
        assert header["workload"] == WORKLOAD.describe()
        assert len(records) == MESH.num_macs
        recorded_sites = {
            (r["site"]["row"], r["site"]["col"]) for r in records
        }
        assert recorded_sites == set(make_campaign().sites)

    def test_record_roundtrip_is_lossless(self, tmp_path, uninterrupted):
        for experiment in uninterrupted.experiments:
            record = json.loads(json.dumps(experiment_record(experiment)))
            rebuilt = experiment_from_record(
                record,
                shape=uninterrupted.golden.shape,
                plan=uninterrupted.plan,
                geometry=uninterrupted.geometry,
            )
            assert_experiments_equal(experiment, rebuilt)

    def test_conv_record_roundtrip(self):
        campaign = Campaign(
            MESH,
            ConvWorkload.paper_kernel(6, (3, 3, 2, 3)),
            sites=[(0, 0), (1, 2)],
        )
        result = campaign.run()
        for experiment in result.experiments:
            rebuilt = experiment_from_record(
                json.loads(json.dumps(experiment_record(experiment))),
                shape=result.golden.shape,
                plan=result.plan,
                geometry=result.geometry,
            )
            assert_experiments_equal(experiment, rebuilt)

    def test_record_without_shape_restores_no_pattern(self, uninterrupted):
        experiment = uninterrupted.experiments[0]
        rebuilt = experiment_from_record(experiment_record(experiment))
        assert rebuilt.pattern is None
        assert rebuilt.classification == experiment.classification


class TestTornRecords:
    """Direct unit coverage of read_checkpoint's corrupt-record path."""

    def test_torn_trailing_line_warns_and_is_skipped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        _, intact = read_checkpoint(path)
        lineno = len(path.read_text().splitlines()) + 1
        with path.open("a") as stream:
            stream.write('{"site": {"row": 2, "col"')  # torn mid-write
        with pytest.warns(RuntimeWarning) as caught:
            header, records = read_checkpoint(path)
        # The torn line is dropped; every intact record survives.
        assert records == intact
        assert header["kind"] == "campaign-checkpoint"
        message = str(caught[0].message)
        assert f"{path}:{lineno}" in message
        assert "skipping corrupt checkpoint record" in message
        assert "the site will be re-executed" in message

    def test_valid_json_without_site_also_warns(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        _, intact = read_checkpoint(path)
        with path.open("a") as stream:
            stream.write(json.dumps({"rows": 2}) + "\n")
        with pytest.warns(
            RuntimeWarning, match="not an experiment object"
        ):
            _, records = read_checkpoint(path)
        assert records == intact

    def test_torn_middle_record_keeps_later_records(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        lines = path.read_text().splitlines()
        lines.insert(3, '{"half a reco')  # corruption mid-stream
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match=rf"{path}:4 "):
            _, records = read_checkpoint(path)
        # Only the injected line is lost.
        assert len(records) == len(lines) - 2


class TestResume:
    def _truncate(self, path, keep_records: int):
        """Keep the header plus the first ``keep_records`` records."""
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: 1 + keep_records]) + "\n")

    def test_resume_after_midshard_kill(self, tmp_path, uninterrupted):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        self._truncate(path, keep_records=6)
        resumed = make_campaign().run(ParallelExecutor(jobs=2, resume=path))
        assert_campaigns_equivalent(uninterrupted, resumed)
        # Restored sites were not re-executed: the stream ends with exactly
        # one record per site, no duplicates.
        _, records = read_checkpoint(path)
        assert len(records) == MESH.num_macs

    def test_corrupt_trailing_line_warns_and_resumes(
        self, tmp_path, uninterrupted
    ):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        self._truncate(path, keep_records=4)
        with path.open("a") as stream:
            stream.write('{"site": {"row": 2, "col"')  # torn mid-write
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint record"):
            resumed = make_campaign().run(
                ParallelExecutor(jobs=2, resume=path)
            )
        assert_campaigns_equivalent(uninterrupted, resumed)

    def test_resume_serial_single_job(self, tmp_path, uninterrupted):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path, jobs=1)
        self._truncate(path, keep_records=10)
        resumed = make_campaign().run(ParallelExecutor(jobs=1, resume=path))
        assert_campaigns_equivalent(uninterrupted, resumed)

    def test_fully_complete_checkpoint_resumes_without_work(
        self, tmp_path, uninterrupted
    ):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        before = path.read_text()
        resumed = make_campaign().run(ParallelExecutor(jobs=2, resume=path))
        assert_campaigns_equivalent(uninterrupted, resumed)
        assert path.read_text() == before  # nothing re-executed or appended

    def test_mismatched_campaign_is_refused(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_with_checkpoint(path)
        other = Campaign(MESH, WORKLOAD, fault_spec=FaultSpec(bit=5))
        with pytest.raises(ValueError, match="different campaign"):
            other.run(ParallelExecutor(jobs=2, resume=path))

    def test_missing_resume_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            make_campaign().run(
                ParallelExecutor(jobs=2, resume=tmp_path / "absent.jsonl")
            )

    def test_empty_or_headerless_stream_raises(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_checkpoint(empty)
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"schema_version": 1, "kind": "campaign-ch')
        with pytest.raises(ValueError, match="header"):
            read_checkpoint(corrupt)
