"""Unit tests for statistical FI estimation."""

import numpy as np
import pytest

from repro.core.campaign import Campaign, ConvWorkload, GemmWorkload
from repro.core.sampling import random_sites
from repro.core.statistics import (
    RateEstimate,
    estimate_rate,
    required_sample_size,
    wilson_interval,
)
from repro.systolic import Dataflow, MeshConfig


class TestRequiredSampleSize:
    def test_worst_case_prior_large_population(self):
        # Classic reference point: 5% margin, 95% confidence, p=0.5 over a
        # huge population needs ~384 samples.
        n = required_sample_size(10**9, margin=0.05, confidence=0.95)
        assert 380 <= n <= 390

    def test_never_exceeds_population(self):
        # An extreme margin demand saturates at the population size
        # (exhaustive campaign) rather than exceeding it.
        assert required_sample_size(100, margin=0.001) == 100
        assert required_sample_size(100, margin=0.01) <= 100

    def test_tighter_margin_needs_more_samples(self):
        loose = required_sample_size(10**6, margin=0.05)
        tight = required_sample_size(10**6, margin=0.01)
        assert tight > loose

    def test_higher_confidence_needs_more_samples(self):
        low = required_sample_size(10**6, confidence=0.90)
        high = required_sample_size(10**6, confidence=0.99)
        assert high > low

    def test_informative_prior_reduces_samples(self):
        neutral = required_sample_size(10**6, expected_rate=0.5)
        skewed = required_sample_size(10**6, expected_rate=0.05)
        assert skewed < neutral

    def test_paper_scale_sampling_win(self):
        # TPUv1-scale exhaustive space (65536 MACs x 32 bits x 2): a 2%
        # margin needs ~3 orders of magnitude fewer experiments.
        population = 65536 * 32 * 2
        n = required_sample_size(population, margin=0.02)
        assert n < population / 500

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(0)
        with pytest.raises(ValueError):
            required_sample_size(10, margin=0.0)
        with pytest.raises(ValueError):
            required_sample_size(10, confidence=1.5)
        with pytest.raises(ValueError):
            required_sample_size(10, expected_rate=0.0)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_bounded_to_unit_interval(self):
        low, _ = wilson_interval(0, 50)
        _, high = wilson_interval(50, 50)
        assert low == 0.0 or low > 0.0
        assert 0.0 <= low and high <= 1.0

    def test_extremes_do_not_degenerate(self):
        # Unlike the normal approximation, Wilson gives nonzero width at 0.
        low, high = wilson_interval(0, 100)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high > 0.01

    def test_more_trials_narrow_the_interval(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)


class TestEstimateRate:
    def test_sampled_estimate_brackets_exhaustive_truth(self):
        """The end-to-end use: estimate a conv campaign's SDC rate from a
        sample and check the exhaustive ground truth lies in the interval."""
        mesh = MeshConfig.paper()
        workload = ConvWorkload.paper_kernel(8, (3, 3, 3, 3))
        exhaustive = Campaign(mesh, workload).run()
        true_rate = exhaustive.sdc_rate()  # 3/16 of columns are live

        sampled = Campaign(
            mesh, workload, sites=random_sites(mesh, 96, seed=4)
        ).run()
        estimate = estimate_rate(sampled.experiments, confidence=0.99)
        assert estimate.samples == 96
        assert estimate.contains(true_rate)

    def test_custom_predicate(self):
        mesh = MeshConfig(4, 4)
        result = Campaign(
            mesh, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        ).run()
        estimate = estimate_rate(
            result.experiments, predicate=lambda e: e.num_corrupted == 4
        )
        assert estimate.rate == 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            estimate_rate([])

    def test_margin_property(self):
        estimate = RateEstimate(
            rate=0.5, low=0.4, high=0.6, samples=100, confidence=0.95
        )
        assert estimate.margin == pytest.approx(0.1)
        assert estimate.contains(0.45)
        assert not estimate.contains(0.7)
