"""Unit tests for the one-shot paper study runner."""

import pytest

from repro.core.campaign import FaultSpec
from repro.core.sampling import diagonal_sites
from repro.core.study import run_paper_study
from repro.systolic import MeshConfig

MESH = MeshConfig.paper()


@pytest.fixture(scope="module")
def fast_report():
    return run_paper_study(
        mesh=MESH, sites=diagonal_sites(MESH), include_large=False
    )


class TestStudyExecution:
    def test_covers_every_small_configuration_once(self, fast_report):
        configurations = [e.configuration for e in fast_report.entries]
        assert len(configurations) == len(set(configurations))
        # RQ1: 2 GEMM configs; RQ2 adds 2 convs (the shared GEMM is
        # deduplicated); RQ3's small conv config is shared with RQ2.
        assert len(configurations) == 4

    def test_large_configs_included_on_request(self):
        report = run_paper_study(
            mesh=MESH, sites=[(0, 0)], include_large=True
        )
        assert any("112" in e.configuration for e in report.entries)

    def test_all_single_class_and_theory_matched(self, fast_report):
        assert fast_report.all_single_class
        assert fast_report.all_match_theory
        for entry in fast_report.entries:
            assert entry.matches_theory

    def test_entries_carry_campaign_results(self, fast_report):
        for entry in fast_report.entries:
            assert entry.result.experiments
            assert entry.research_question in ("RQ1", "RQ2", "RQ3")


class TestRendering:
    def test_text_report(self, fast_report):
        text = fast_report.to_text()
        assert "single-element" in text
        assert "single-column" in text
        assert "single-channel" in text
        assert "all match analytical prediction : True" in text

    def test_markdown_report(self, fast_report):
        md = fast_report.to_markdown()
        assert md.startswith("# Paper study report")
        assert "| RQ |" in md
        assert "**True**" in md

    def test_custom_fault_spec_surfaces_in_report(self):
        report = run_paper_study(
            mesh=MESH,
            fault_spec=FaultSpec(bit=9, stuck_value=0),
            sites=[(0, 0)],
            include_large=False,
        )
        assert "stuck-at-0 @ sum[9]" in report.to_text()
