"""Unit tests for FIT-rate reliability budgeting."""

import math

import pytest

from repro.core.reliability import (
    ASIL_D_FIT_BUDGET,
    ReliabilityBudget,
    dangerous_fit,
    max_per_mac_fit,
    mission_failure_probability,
    mttf_hours,
)
from repro.core.vulnerability import analyze_operation
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig


class TestDangerousFit:
    def test_worst_case_is_linear_in_macs(self):
        assert dangerous_fit(256, 0.1) == pytest.approx(25.6)
        assert dangerous_fit(65536, 0.1) == pytest.approx(6553.6)

    def test_architectural_masking_scales(self):
        # A K=3 conv under WS exposes only 3/16 of the columns.
        assert dangerous_fit(256, 0.1, architectural_sdc_rate=3 / 16) == (
            pytest.approx(4.8)
        )

    def test_mitigation_coverage_scales(self):
        assert dangerous_fit(256, 0.1, mitigation_coverage=0.9) == (
            pytest.approx(2.56)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            dangerous_fit(0, 1.0)
        with pytest.raises(ValueError):
            dangerous_fit(1, -1.0)
        with pytest.raises(ValueError):
            dangerous_fit(1, 1.0, architectural_sdc_rate=2.0)
        with pytest.raises(ValueError):
            dangerous_fit(1, 1.0, mitigation_coverage=-0.5)


class TestInversion:
    def test_budget_roundtrip(self):
        per_mac = max_per_mac_fit(256, budget_fit=10.0)
        assert dangerous_fit(256, per_mac) == pytest.approx(10.0)

    def test_tpu_scale_budget_is_tight(self):
        # The paper's point: at 65K MACs, ASIL-D leaves each MAC only
        # ~0.00015 FIT of worst-case budget.
        per_mac = max_per_mac_fit(65536)
        assert per_mac == pytest.approx(10.0 / 65536)

    def test_masking_and_coverage_relax_the_budget(self):
        base = max_per_mac_fit(256)
        masked = max_per_mac_fit(256, architectural_sdc_rate=0.25)
        covered = max_per_mac_fit(256, mitigation_coverage=0.9)
        assert masked == pytest.approx(4 * base)
        assert covered == pytest.approx(10 * base)

    def test_fully_safe_workload_is_unbounded(self):
        assert max_per_mac_fit(256, architectural_sdc_rate=0.0) == math.inf
        assert max_per_mac_fit(256, mitigation_coverage=1.0) == math.inf


class TestArrivalMath:
    def test_mttf(self):
        assert mttf_hours(10.0) == pytest.approx(1e8)
        assert mttf_hours(0.0) == math.inf

    def test_mission_probability_small_rates(self):
        # 10 FIT over 10,000 hours ~ 1e-4.
        p = mission_failure_probability(10.0, 10_000)
        assert p == pytest.approx(1e-4, rel=1e-3)

    def test_mission_probability_bounds(self):
        assert mission_failure_probability(0.0, 1e6) == 0.0
        assert 0.0 < mission_failure_probability(1e6, 1e6) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mttf_hours(-1.0)
        with pytest.raises(ValueError):
            mission_failure_probability(1.0, -1.0)


class TestBudgetObject:
    def _profile(self, k_channels: int):
        mesh = MeshConfig.paper()
        from repro.ops.im2col import ConvGeometry

        g = ConvGeometry(n=1, c=3, h=16, w=16, k=k_channels, r=3, s=3)
        plan = plan_gemm_tiling(
            g.gemm_m, g.gemm_k, g.gemm_n, mesh, Dataflow.WEIGHT_STATIONARY
        )
        return analyze_operation(plan, mesh, geometry=g)

    def test_budget_with_real_workload_profile(self):
        profile = self._profile(k_channels=3)  # 3/16 columns live
        budget = ReliabilityBudget(
            num_macs=256, per_mac_fit=0.1, profile=profile
        )
        assert budget.raw_fit == pytest.approx(25.6)
        assert budget.dangerous_fit == pytest.approx(25.6 * 3 / 16)
        assert budget.meets_budget  # 4.8 <= 10
        assert budget.headroom > 2.0

    def test_mitigation_rescues_a_violating_deployment(self):
        profile = self._profile(k_channels=16)  # fully exposed
        uncovered = ReliabilityBudget(
            num_macs=256, per_mac_fit=0.1, profile=profile
        )
        assert not uncovered.meets_budget  # 25.6 > 10
        covered = ReliabilityBudget(
            num_macs=256,
            per_mac_fit=0.1,
            profile=profile,
            mitigation_coverage=0.9,
        )
        assert covered.meets_budget
        assert covered.mttf() > uncovered.mttf()
