"""Sharding granularity for batched engine tiers.

:func:`shard_sites` grew a ``min_batch`` floor so the analytic tier's
shards stay large enough to amortise the closed-form setup cost (one
shard of eight sites beats eight shards of one by roughly the batch
width). These tests pin the floor's arithmetic and prove the dispatcher
applies it exactly when — and only when — the campaign batches.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import Campaign, GemmWorkload
from repro.core.executor import (
    BATCHED_MIN_SHARD_SITES,
    ParallelExecutor,
    shard_sites,
)
from repro.core.executor import _ShardDispatcher
from repro.systolic import Dataflow, MeshConfig

SITES_256 = [(r, c) for r in range(16) for c in range(16)]


class TestMinBatchFloor:
    def test_exhaustive_paper_mesh_lands_on_the_floor(self):
        shards = shard_sites(SITES_256, 32, min_batch=8)
        assert len(shards) == 32
        assert all(len(shard) == 8 for shard in shards)

    def test_floor_lowers_the_shard_count(self):
        # 20 sites over 16 requested shards would mean mostly 1-site
        # shards; the floor of 8 collapses that to 2 shards of 10.
        shards = shard_sites(SITES_256[:20], 16, min_batch=8)
        assert [len(shard) for shard in shards] == [10, 10]

    def test_small_site_list_becomes_one_shard(self):
        shards = shard_sites(SITES_256[:5], 16, min_batch=8)
        assert [len(shard) for shard in shards] == [5]

    def test_default_min_batch_is_unchanged(self):
        shards = shard_sites(SITES_256[:20], 16)
        assert len(shards) == 16
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_order_preserving_concatenation(self):
        for min_batch in (1, 8):
            shards = shard_sites(SITES_256, 32, min_batch=min_batch)
            flat = [site for shard in shards for site in shard]
            assert flat == SITES_256

    def test_determinism(self):
        assert shard_sites(SITES_256, 32, min_batch=8) == shard_sites(
            SITES_256, 32, min_batch=8
        )

    @pytest.mark.parametrize("min_batch", (0, -3))
    def test_invalid_min_batch_raises(self, min_batch):
        with pytest.raises(ValueError, match="min_batch"):
            shard_sites(SITES_256, 4, min_batch=min_batch)

    def test_empty_sites(self):
        assert shard_sites([], 4, min_batch=8) == []


class TestDispatcherGranularity:
    """The dispatcher picks the floor off ``campaign.supports_batching``.

    Constructing :class:`_ShardDispatcher` directly builds the task queue
    without starting a worker pool, so the granularity decision is
    observable in isolation.
    """

    MESH = MeshConfig(rows=4, cols=4)

    def _queue_sizes(self, engine: str) -> list[int]:
        workload = GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        campaign = Campaign(self.MESH, workload, engine=engine)
        golden, plan, geometry = campaign.golden_run()
        dispatcher = _ShardDispatcher(
            ParallelExecutor(jobs=4),
            campaign,
            golden,
            plan,
            geometry,
            list(campaign.sites),
            stream=None,
        )
        return [len(task.sites) for task in dispatcher.queue]

    def test_analytic_campaign_gets_batched_shards(self):
        assert self._queue_sizes("analytic") == [
            BATCHED_MIN_SHARD_SITES,
            BATCHED_MIN_SHARD_SITES,
        ]

    def test_functional_campaign_keeps_per_site_shards(self):
        assert self._queue_sizes("functional") == [1] * self.MESH.num_macs
