"""Unit tests for the FI campaign framework."""

import numpy as np
import pytest

from repro.core.campaign import (
    Campaign,
    ConvWorkload,
    FaultSpec,
    FillKind,
    GemmWorkload,
    OperationType,
)
from repro.core.classifier import PatternClass
from repro.faults.model import FaultSet, StuckAtFault
from repro.faults.sites import FaultSite
from repro.systolic import Dataflow, MeshConfig


class TestWorkloads:
    def test_gemm_square_factory(self):
        wl = GemmWorkload.square(16, Dataflow.WEIGHT_STATIONARY)
        assert (wl.m, wl.k, wl.n) == (16, 16, 16)
        assert wl.operation is OperationType.GEMM
        assert "GEMM 16x16x16" in wl.describe()

    def test_gemm_operands_deterministic(self):
        wl = GemmWorkload(3, 4, 5, Dataflow.OUTPUT_STATIONARY,
                          fill=FillKind.RANDOM, seed=7)
        a1, b1 = wl.operands()
        a2, b2 = wl.operands()
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
        assert a1.shape == (3, 4) and b1.shape == (4, 5)

    def test_ones_fill(self):
        wl = GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        a, b = wl.operands()
        assert np.all(a == 1) and np.all(b == 1)

    def test_ramp_fill_nonzero(self):
        wl = GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY,
                                 fill=FillKind.RAMP)
        a, _ = wl.operands()
        assert np.all(a > 0)

    def test_conv_paper_kernel_factory(self):
        wl = ConvWorkload.paper_kernel(16, (3, 3, 3, 8))
        assert wl.kernel_spec == (3, 3, 3, 8)
        assert wl.operation is OperationType.CONV
        assert "3x3x3x8" in wl.describe()

    def test_conv_operand_shapes(self):
        wl = ConvWorkload.paper_kernel(8, (3, 3, 2, 5))
        x, w = wl.operands()
        assert x.shape == (1, 2, 8, 8)
        assert w.shape == (5, 2, 3, 3)


class TestFaultSpec:
    def test_defaults_to_paper_signal(self):
        spec = FaultSpec()
        assert spec.signal == "sum"
        fault = spec.fault_at(2, 3)
        assert fault.site == FaultSite(2, 3, "sum", spec.bit)
        assert fault.stuck_value == spec.stuck_value

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(bit=32)
        with pytest.raises(ValueError):
            FaultSpec(stuck_value=7)

    def test_describe(self):
        assert FaultSpec(bit=9, stuck_value=0).describe() == "stuck-at-0 @ sum[9]"


class TestCampaignExecution:
    def test_exhaustive_site_count(self, mesh4):
        campaign = Campaign(mesh4, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY))
        result = campaign.run()
        assert len(result.experiments) == 16
        sites = {(e.site.row, e.site.col) for e in result.experiments}
        assert len(sites) == 16

    def test_custom_sites(self, mesh4):
        campaign = Campaign(
            mesh4,
            GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
            sites=[(0, 0), (3, 3)],
        )
        result = campaign.run()
        assert len(result.experiments) == 2

    def test_result_at(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY)
        ).run()
        experiment = result.result_at(2, 1)
        assert (experiment.site.row, experiment.site.col) == (2, 1)
        with pytest.raises(KeyError):
            Campaign(
                mesh4,
                GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY),
                sites=[(0, 0)],
            ).run().result_at(1, 1)

    def test_keep_patterns_flag(self, mesh4):
        wl = GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        with_patterns = Campaign(mesh4, wl, sites=[(0, 0)]).run()
        without = Campaign(mesh4, wl, sites=[(0, 0)], keep_patterns=False).run()
        assert with_patterns.experiments[0].pattern is not None
        assert without.experiments[0].pattern is None
        # Classification survives either way.
        assert (
            without.experiments[0].pattern_class
            is with_patterns.experiments[0].pattern_class
        )

    def test_engines_agree(self, mesh4):
        wl = GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY,
                                 fill=FillKind.RANDOM)
        fast = Campaign(mesh4, wl, engine="functional").run()
        slow = Campaign(mesh4, wl, engine="cycle").run()
        for e_fast, e_slow in zip(fast.experiments, slow.experiments):
            assert e_fast.pattern_class is e_slow.pattern_class
            assert e_fast.num_corrupted == e_slow.num_corrupted

    def test_invalid_engine_rejected(self, mesh4):
        with pytest.raises(ValueError):
            Campaign(
                mesh4,
                GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
                engine="fpga",
            )

    def test_run_single_accepts_fault_set(self, mesh4):
        campaign = Campaign(mesh4, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY))
        faults = FaultSet.of(
            StuckAtFault(site=FaultSite(0, 0, "sum", 20)),
            StuckAtFault(site=FaultSite(1, 3, "sum", 20)),
        )
        output, plan, geometry = campaign.run_single(faults)
        assert output.shape == (4, 4)
        assert geometry is None


class TestCampaignReductions:
    def test_ws_reductions(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        ).run()
        assert result.dominant_class() is PatternClass.SINGLE_COLUMN
        assert result.is_single_class()
        assert result.sdc_rate() == 1.0
        assert result.masking_rate() == 0.0
        assert result.mean_corrupted_cells() == 4.0  # one full column of 4

    def test_os_reductions(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY)
        ).run()
        assert result.dominant_class() is PatternClass.SINGLE_ELEMENT
        assert result.mean_corrupted_cells() == 1.0

    def test_census_sums_to_experiment_count(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY)
        ).run()
        assert sum(result.census().values()) == len(result.experiments)

    def test_partially_used_mesh_has_masked_experiments(self, mesh4):
        # A 2x2 OS workload uses only the top-left 2x2 PEs of the 4x4 mesh.
        result = Campaign(
            mesh4, GemmWorkload.square(2, Dataflow.OUTPUT_STATIONARY)
        ).run()
        census = result.census()
        assert census[PatternClass.MASKED] == 12
        assert census[PatternClass.SINGLE_ELEMENT] == 4
        assert result.dominant_class() is PatternClass.SINGLE_ELEMENT
        assert result.is_single_class()

    def test_conv_campaign(self, mesh4):
        result = Campaign(mesh4, ConvWorkload.paper_kernel(6, (3, 3, 2, 3))).run()
        assert result.dominant_class() is PatternClass.SINGLE_CHANNEL
        assert result.geometry is not None

    def test_wall_time_recorded(self, mesh4):
        result = Campaign(
            mesh4,
            GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
            sites=[(0, 0)],
        ).run()
        assert result.wall_seconds > 0
