"""Determinism-equivalence suite for the sharded campaign executor.

Property-style sweep over (dataflow x operation x worker count): whatever
the parallelism, a campaign's merged :class:`CampaignResult` must equal
the serial reference field-for-field — census, SDC rate, and per-site
pattern classes in canonical site order. Plus unit coverage for the
deterministic sharder, the golden cache, and the cross-process operand
regeneration contract.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import (
    GOLDEN_CACHE,
    Campaign,
    ConvWorkload,
    FillKind,
    GemmWorkload,
    ParallelExecutor,
    SerialExecutor,
    operand_seeds,
    shard_sites,
)
from repro.systolic import Dataflow, MeshConfig

from tests.core._support import (
    assert_campaigns_equivalent,
    operand_digest,
)

MESH = MeshConfig(rows=4, cols=4)

#: The equivalence grid: every dataflow for (tiled) GEMM, plus conv under
#: both paper dataflows. Size 8 on the 4x4 mesh forces multi-tile classes,
#: the harder merge case.
WORKLOADS = {
    "gemm-OS": GemmWorkload.square(8, Dataflow.OUTPUT_STATIONARY),
    "gemm-WS": GemmWorkload.square(8, Dataflow.WEIGHT_STATIONARY),
    "gemm-IS": GemmWorkload.square(8, Dataflow.INPUT_STATIONARY),
    "conv-WS": ConvWorkload.paper_kernel(
        6, (3, 3, 2, 3), dataflow=Dataflow.WEIGHT_STATIONARY
    ),
    "conv-OS": ConvWorkload.paper_kernel(
        6, (3, 3, 2, 3), dataflow=Dataflow.OUTPUT_STATIONARY
    ),
}

_SERIAL_CACHE: dict[str, object] = {}


def serial_reference(name: str):
    """The serial-path result for one grid entry, computed once."""
    if name not in _SERIAL_CACHE:
        _SERIAL_CACHE[name] = Campaign(MESH, WORKLOADS[name]).run(
            SerialExecutor()
        )
    return _SERIAL_CACHE[name]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_equivalence(self, name, jobs):
        campaign = Campaign(MESH, WORKLOADS[name])
        parallel = campaign.run(ParallelExecutor(jobs=jobs))
        assert_campaigns_equivalent(serial_reference(name), parallel)

    def test_default_run_is_the_serial_reference(self):
        result = Campaign(MESH, WORKLOADS["gemm-WS"]).run()
        assert_campaigns_equivalent(serial_reference("gemm-WS"), result)

    def test_equivalence_with_patterns_dropped(self):
        campaign = Campaign(MESH, WORKLOADS["gemm-OS"], keep_patterns=False)
        serial = campaign.run(SerialExecutor())
        parallel = campaign.run(ParallelExecutor(jobs=2))
        assert all(e.pattern is None for e in parallel.experiments)
        assert_campaigns_equivalent(serial, parallel)

    def test_equivalence_on_partial_site_list(self):
        sites = [(0, 0), (3, 1), (1, 2), (2, 3)]  # deliberately unsorted
        serial = Campaign(MESH, WORKLOADS["gemm-WS"], sites=sites).run()
        parallel = Campaign(MESH, WORKLOADS["gemm-WS"], sites=sites).run(
            ParallelExecutor(jobs=2)
        )
        assert [e.site for e in parallel.experiments] == [
            e.site for e in serial.experiments
        ]
        assert_campaigns_equivalent(serial, parallel)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError, match="shards_per_worker"):
            ParallelExecutor(jobs=1, shards_per_worker=0)


class TestShardSites:
    SITES = [(r, c) for r in range(4) for c in range(4)]

    def test_preserves_order_and_coverage(self):
        shards = shard_sites(self.SITES, 3)
        flattened = [site for shard in shards for site in shard]
        assert flattened == self.SITES

    def test_balanced_within_one(self):
        sizes = [len(shard) for shard in shard_sites(self.SITES, 5)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(self.SITES)

    def test_deterministic(self):
        assert shard_sites(self.SITES, 7) == shard_sites(self.SITES, 7)

    def test_more_shards_than_sites(self):
        shards = shard_sites(self.SITES[:3], 16)
        assert shards == [[(0, 0)], [(0, 1)], [(0, 2)]]

    def test_single_site(self):
        assert shard_sites([(2, 3)], 1) == [[(2, 3)]]
        assert shard_sites([(2, 3)], 8) == [[(2, 3)]]

    def test_empty_and_invalid(self):
        assert shard_sites([], 4) == []
        with pytest.raises(ValueError):
            shard_sites(self.SITES, 0)


class TestGoldenCache:
    def test_golden_memoized_per_configuration(self):
        campaign = Campaign(MESH, GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY))
        first = GOLDEN_CACHE.golden_run(campaign)
        second = GOLDEN_CACHE.golden_run(campaign)
        assert first[0] is second[0]  # the very same array, not a recompute

    def test_cached_golden_is_read_only(self):
        campaign = Campaign(MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY))
        golden, _, _ = GOLDEN_CACHE.golden_run(campaign)
        with pytest.raises(ValueError):
            golden[0, 0] = 99

    def test_distinct_workloads_get_distinct_entries(self):
        GOLDEN_CACHE.golden_run(
            Campaign(MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY))
        )
        before = len(GOLDEN_CACHE)
        GOLDEN_CACHE.golden_run(
            Campaign(MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY, FillKind.RAMP))
        )
        assert len(GOLDEN_CACHE) == before + 1

    def test_reused_across_distinct_campaigns_with_identical_keys(self):
        # Two separate Campaign objects, same (workload, mesh, engine) key:
        # the second campaign must hit the first's cache entry, not add one.
        first = Campaign(MESH, GemmWorkload.square(4, Dataflow.INPUT_STATIONARY))
        second = Campaign(MESH, GemmWorkload.square(4, Dataflow.INPUT_STATIONARY))
        assert first is not second
        golden_a, plan_a, _ = GOLDEN_CACHE.golden_run(first)
        before = len(GOLDEN_CACHE)
        golden_b, plan_b, _ = GOLDEN_CACHE.golden_run(second)
        assert len(GOLDEN_CACHE) == before
        assert golden_a is golden_b  # shared array, not an equal recompute
        assert plan_a is plan_b


#: Pinned digests: any drift in operand generation (fill policies, the
#: seed-derivation rule) breaks cross-process determinism and must fail
#: loudly here.
PINNED_GEMM = GemmWorkload(
    m=8, k=8, n=8, dataflow=Dataflow.WEIGHT_STATIONARY,
    fill=FillKind.RANDOM, seed=7,
)
PINNED_GEMM_DIGEST = (
    "e7e57937894960508ef2c2af21f6938b565dd45c0f6e76a7a172adff4d4b1336"
)
PINNED_CONV = ConvWorkload(
    input_size=6, kernel_rows=3, kernel_cols=3, in_channels=2,
    out_channels=3, fill=FillKind.RANDOM, seed=7,
)
PINNED_CONV_DIGEST = (
    "00f705b5dd66190931f84e00b81ff9caaca3915c2d3f0c708e0b9caeeee4cf5f"
)


class TestOperandDeterminismAcrossProcesses:
    def test_operand_seeds_derivation(self):
        assert operand_seeds(0) == (0, 1)
        assert operand_seeds(41) == (41, 42)

    @pytest.mark.parametrize(
        "workload, pinned",
        [(PINNED_GEMM, PINNED_GEMM_DIGEST), (PINNED_CONV, PINNED_CONV_DIGEST)],
        ids=["gemm", "conv"],
    )
    def test_operand_bytes_pinned_across_processes(self, workload, pinned):
        assert operand_digest(workload) == pinned
        with ProcessPoolExecutor(max_workers=1) as pool:
            child_digest = pool.submit(operand_digest, workload).result()
        assert child_digest == pinned
