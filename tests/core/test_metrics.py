"""Unit tests for campaign reliability metrics."""

import numpy as np
import pytest

from repro.core.campaign import Campaign, GemmWorkload
from repro.core.classifier import PatternClass
from repro.core.fault_patterns import extract_pattern
from repro.core.metrics import (
    CellStats,
    class_census,
    corrupted_cell_stats,
    fault_tolerance_ranking,
    masking_rate,
    msf_coverage_by_ssf,
    pattern_jaccard,
    sdc_rate,
    support_covers,
)
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


def _pattern(mask):
    golden = np.zeros(mask.shape, dtype=np.int64)
    plan = plan_gemm_tiling(
        mask.shape[0], 4, mask.shape[1], MESH, Dataflow.WEIGHT_STATIONARY
    )
    return extract_pattern(golden, np.where(mask, 1, 0), plan=plan)


@pytest.fixture(scope="module")
def campaigns():
    return {
        str(dataflow): Campaign(MESH, GemmWorkload.square(4, dataflow)).run()
        for dataflow in Dataflow
    }


class TestRates:
    def test_sdc_and_masking_are_complements(self, campaigns):
        for result in campaigns.values():
            experiments = result.experiments
            assert sdc_rate(experiments) + masking_rate(experiments) == 1.0

    def test_empty_experiments(self):
        assert sdc_rate([]) == 0.0
        assert masking_rate([]) == 1.0

    def test_census_matches_campaign(self, campaigns):
        result = campaigns["WS"]
        assert class_census(result.experiments) == result.census()


class TestCellStats:
    def test_ws_stats(self, campaigns):
        stats = corrupted_cell_stats(campaigns["WS"].experiments)
        assert stats == CellStats(mean=4.0, maximum=4, minimum=4, total=64)

    def test_os_stats(self, campaigns):
        stats = corrupted_cell_stats(campaigns["OS"].experiments)
        assert stats.mean == 1.0
        assert stats.total == 16

    def test_empty(self):
        assert corrupted_cell_stats([]).total == 0


class TestRanking:
    def test_os_more_fault_tolerant_than_ws_and_is(self, campaigns):
        ranking = fault_tolerance_ranking(campaigns)
        # OS corrupts one cell per fault; WS a full column; IS a full row
        # (same volume as WS on a square output) — OS ranks first.
        assert ranking[0][0] == "OS"
        assert ranking[0][1] < ranking[1][1]
        by_name = dict(ranking)
        assert by_name["WS"] == by_name["IS"] == 4.0


class TestPatternOverlap:
    def test_jaccard_identical(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 1] = True
        assert pattern_jaccard(_pattern(mask), _pattern(mask)) == 1.0

    def test_jaccard_disjoint(self):
        a = np.zeros((4, 4), dtype=bool)
        b = np.zeros((4, 4), dtype=bool)
        a[:, 0] = True
        b[:, 2] = True
        assert pattern_jaccard(_pattern(a), _pattern(b)) == 0.0

    def test_jaccard_partial(self):
        a = np.zeros((4, 4), dtype=bool)
        b = np.zeros((4, 4), dtype=bool)
        a[0, 0] = a[1, 0] = True
        b[1, 0] = b[2, 0] = True
        assert pattern_jaccard(_pattern(a), _pattern(b)) == pytest.approx(1 / 3)

    def test_jaccard_both_empty(self):
        empty = np.zeros((4, 4), dtype=bool)
        assert pattern_jaccard(_pattern(empty), _pattern(empty)) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pattern_jaccard(
                _pattern(np.zeros((4, 4), bool)), _pattern(np.zeros((2, 4), bool))
            )


class TestCoverage:
    def test_support_covers(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        pattern = _pattern(mask)
        cover = np.zeros((4, 4), dtype=bool)
        cover[:, 1] = True
        assert support_covers(cover, pattern)
        assert not support_covers(np.zeros((4, 4), bool), pattern)

    def test_msf_covered_by_union_of_ssfs(self):
        col0 = np.zeros((4, 4), dtype=bool)
        col0[:, 0] = True
        col2 = np.zeros((4, 4), dtype=bool)
        col2[:, 2] = True
        msf = col0 | col2
        assert msf_coverage_by_ssf(
            _pattern(msf), [_pattern(col0), _pattern(col2)]
        )

    def test_msf_outside_union_not_covered(self):
        col0 = np.zeros((4, 4), dtype=bool)
        col0[:, 0] = True
        msf = np.zeros((4, 4), dtype=bool)
        msf[:, 3] = True
        assert not msf_coverage_by_ssf(_pattern(msf), [_pattern(col0)])

    def test_empty_ssf_list(self):
        empty = np.zeros((4, 4), dtype=bool)
        assert msf_coverage_by_ssf(_pattern(empty), [])
        corrupted = empty.copy()
        corrupted[0, 0] = True
        assert not msf_coverage_by_ssf(_pattern(corrupted), [])
