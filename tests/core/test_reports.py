"""Unit tests for report formatting."""

import pytest

from repro.core.campaign import Campaign, GemmWorkload
from repro.core.reports import (
    campaign_summary,
    census_rows,
    format_markdown_table,
    format_table,
)
from repro.systolic import Dataflow, MeshConfig


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        # All rows align to the widest cell.
        assert len(lines[2]) <= len(lines[0]) + 4
        assert "long-name" in lines[3]

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_indent(self):
        table = format_table(["x"], [["1"]], indent="  ")
        assert all(line.startswith("  ") for line in table.splitlines())


class TestMarkdownTable:
    def test_structure(self):
        md = format_markdown_table(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestCampaignSummary:
    def test_contains_key_facts(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        ).run()
        text = campaign_summary(result)
        assert "GEMM 4x4x4" in text
        assert "stuck-at-1" in text
        assert "single-column" in text
        assert "100.0%" in text  # SDC rate

    def test_custom_name(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        ).run()
        assert "Fig3a" in campaign_summary(result, name="Fig3a")

    def test_census_rows_skip_empty_classes(self, mesh4):
        result = Campaign(
            mesh4, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        ).run()
        rows = census_rows(result)
        assert len(rows) == 1
        cls, count, share = rows[0]
        assert cls == "single-column"
        assert count == 16
        assert share == "100.0%"
