"""Unit tests for campaign serialisation and fault dictionaries."""

import json

import pytest

from repro.core.campaign import Campaign, ConvWorkload, GemmWorkload
from repro.core.serialize import (
    SCHEMA_VERSION,
    campaign_to_dict,
    fault_dictionary,
    load_campaign,
    load_metrics,
    metrics_from_dict,
    metrics_to_dict,
    save_campaign,
    save_fault_dictionary,
    save_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


@pytest.fixture(scope="module")
def ws_result():
    return Campaign(MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)).run()


class TestCampaignToDict:
    def test_roundtrips_through_json(self, ws_result):
        data = campaign_to_dict(ws_result)
        restored = json.loads(json.dumps(data))
        assert restored == data

    def test_metadata_fields(self, ws_result):
        data = campaign_to_dict(ws_result)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["mesh"] == {"rows": 4, "cols": 4}
        assert data["dataflow"] == "WS"
        assert data["gemm_shape"] == [4, 4, 4]
        assert data["fault_spec"]["signal"] == "sum"
        assert len(data["experiments"]) == 16

    def test_experiment_entries(self, ws_result):
        entry = campaign_to_dict(ws_result)["experiments"][0]
        assert entry["pattern_class"] == "single-column"
        assert entry["num_corrupted"] == 4
        assert len(entry["corrupted_cells"]) == 4

    def test_no_telemetry_key_on_unobserved_runs(self, ws_result):
        assert ws_result.telemetry is None
        assert "telemetry" not in campaign_to_dict(ws_result)

    def test_telemetry_section_serialised_when_present(self, ws_result):
        telemetry = {"elapsed_seconds": 1.5, "sites": 16, "retries": 0}
        ws_result.telemetry = telemetry
        try:
            data = campaign_to_dict(ws_result)
            assert data["telemetry"] == telemetry
            assert json.loads(json.dumps(data))["telemetry"] == telemetry
        finally:
            ws_result.telemetry = None  # module-scoped fixture: restore

    def test_without_patterns(self):
        result = Campaign(
            MESH,
            GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
            sites=[(0, 0)],
            keep_patterns=False,
        ).run()
        entry = campaign_to_dict(result)["experiments"][0]
        assert entry["corrupted_cells"] is None
        assert entry["num_corrupted"] == 4


class TestSaveLoad:
    def test_save_and_load(self, ws_result, tmp_path):
        path = save_campaign(ws_result, tmp_path / "campaign.json")
        data = load_campaign(path)
        assert data["workload"] == ws_result.workload.describe()

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            load_campaign(path)


class TestMetricsCodec:
    def _registry(self):
        registry = MetricsRegistry()
        registry.gauge("repro_sites_total", "Sites.").set(16)
        registry.counter("repro_sites_completed_total", "Done.").inc(16)
        registry.histogram("repro_shard_seconds", "Latency.").observe(0.25)
        return registry

    def test_envelope(self):
        data = metrics_to_dict(self._registry())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kind"] == "metrics-snapshot"
        assert json.loads(json.dumps(data)) == data

    def test_round_trip_restores_values(self):
        restored = metrics_from_dict(metrics_to_dict(self._registry()))
        assert restored.value("repro_sites_total") == 16.0
        assert restored.value("repro_sites_completed_total") == 16.0
        assert restored.histogram_at("repro_shard_seconds").count == 1

    def test_save_and_load(self, tmp_path):
        path = save_metrics(self._registry(), tmp_path / "metrics.json")
        restored = load_metrics(path)
        assert restored.snapshot() == self._registry().snapshot()

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            metrics_from_dict({"schema_version": SCHEMA_VERSION, "kind": "campaign", "metrics": []})

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            metrics_from_dict({"schema_version": 999, "kind": "metrics-snapshot", "metrics": []})


class TestFaultDictionary:
    def test_one_entry_per_site(self, ws_result):
        dictionary = fault_dictionary(ws_result)
        assert len(dictionary["sites"]) == 16
        assert dictionary["hardware"]["dataflow"] == "WS"
        entry = dictionary["sites"]["1,2"]
        assert entry["pattern_class"] == "single-column"
        assert all(cell[1] == 2 for cell in entry["cells"])

    def test_conv_entries_carry_channels(self):
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(6, (3, 3, 2, 3)), sites=[(0, 1)]
        ).run()
        dictionary = fault_dictionary(result)
        assert dictionary["sites"]["0,1"]["channels"] == [1]

    def test_save_fault_dictionary(self, ws_result, tmp_path):
        path = save_fault_dictionary(ws_result, tmp_path / "dict.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert "stuck-at-1" in data["fault_model"]
