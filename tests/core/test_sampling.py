"""Unit tests for state-space modelling and site sampling."""

import pytest

from repro.core.campaign import ConvWorkload, GemmWorkload
from repro.core.sampling import (
    StateSpace,
    all_sites,
    corner_sites,
    diagonal_sites,
    paper_configurations,
    paper_state_space,
    random_sites,
)
from repro.systolic import Dataflow, MeshConfig


class TestStateSpace:
    def test_paper_131k_estimate(self):
        # Section III-A: 16x16 mesh, 2 dataflows, 2 op types, 2 op configs
        # -> "131K different FI configurations".
        assert paper_state_space().total_configurations == 131072

    def test_site_counts(self):
        space = paper_state_space()
        assert space.sites_per_mac == 32
        assert space.num_fault_sites == 256 * 32

    def test_all_signals_grow_the_space(self):
        space = StateSpace(
            mesh=MeshConfig(4, 4),
            signals=("a_reg", "b_reg", "product", "sum"),
        )
        assert space.sites_per_mac == 8 + 8 + 32 + 32


class TestSiteStrategies:
    def test_all_sites_exhaustive(self, mesh4):
        sites = all_sites(mesh4)
        assert len(sites) == 16
        assert len(set(sites)) == 16

    def test_random_sites_no_replacement(self, mesh4):
        sites = random_sites(mesh4, 10, seed=1)
        assert len(sites) == 10
        assert len(set(sites)) == 10
        assert all(0 <= r < 4 and 0 <= c < 4 for r, c in sites)

    def test_random_sites_deterministic(self, mesh4):
        assert random_sites(mesh4, 5, seed=3) == random_sites(mesh4, 5, seed=3)

    def test_random_sites_clamped_to_mesh(self, mesh4):
        assert len(random_sites(mesh4, 100)) == 16

    def test_random_sites_validation(self, mesh4):
        with pytest.raises(ValueError):
            random_sites(mesh4, 0)

    def test_diagonal_sites(self, mesh_rect):
        assert diagonal_sites(mesh_rect) == [(0, 0), (1, 1), (2, 2)]

    def test_corner_sites(self, mesh4):
        sites = corner_sites(mesh4)
        assert (0, 0) in sites and (3, 3) in sites
        assert (0, 3) in sites and (3, 0) in sites
        assert (2, 2) in sites
        assert len(sites) == 5

    def test_corner_sites_degenerate_mesh(self):
        assert corner_sites(MeshConfig(1, 1)) == [(0, 0)]


class TestPaperConfigurations:
    def test_rq_keys(self):
        configs = paper_configurations()
        assert set(configs) == {"RQ1", "RQ2", "RQ3"}

    def test_rq1_contrasts_dataflows(self):
        rq1 = paper_configurations()["RQ1"]
        dataflows = {wl.dataflow for wl in rq1}
        assert dataflows == {Dataflow.OUTPUT_STATIONARY, Dataflow.WEIGHT_STATIONARY}
        assert all(isinstance(wl, GemmWorkload) for wl in rq1)
        assert all((wl.m, wl.k, wl.n) == (16, 16, 16) for wl in rq1)

    def test_rq2_contrasts_operations(self):
        rq2 = paper_configurations()["RQ2"]
        assert any(isinstance(wl, GemmWorkload) for wl in rq2)
        kernels = {
            wl.kernel_spec for wl in rq2 if isinstance(wl, ConvWorkload)
        }
        assert kernels == {(3, 3, 3, 3), (3, 3, 3, 8)}

    def test_rq3_contrasts_sizes(self):
        rq3 = paper_configurations()["RQ3"]
        gemm_sizes = {wl.m for wl in rq3 if isinstance(wl, GemmWorkload)}
        assert gemm_sizes == {16, 112}
        conv_sizes = {
            wl.input_size for wl in rq3 if isinstance(wl, ConvWorkload)
        }
        assert conv_sizes == {16, 112}
