"""Unit tests for checksum-based (ABFT) protection."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultSite
from repro.mitigation.abft import (
    AbftGemm,
    recombine_digit_planes,
    signed_digit_planes,
)
from repro.ops.reference import reference_gemm
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig
from repro.systolic.datatypes import INT32, wrap_array

MESH = MeshConfig(16, 16)
OS = Dataflow.OUTPUT_STATIONARY
WS = Dataflow.WEIGHT_STATIONARY


class TestDigitPlanes:
    def test_digits_are_int8_legal(self, rng):
        values = rng.integers(-(2**31), 2**31, size=200)
        planes = signed_digit_planes(values)
        assert planes.min() >= -128 and planes.max() <= 127
        assert planes.shape == (4, 200)

    def test_roundtrip_mod_2_32(self, rng):
        values = rng.integers(-(2**31), 2**31, size=200)
        planes = signed_digit_planes(values)
        recombined = recombine_digit_planes(planes)
        assert np.array_equal(recombined, wrap_array(values, INT32))

    def test_known_values(self):
        planes = signed_digit_planes(np.array([0, 1, 255, 256, -1]))
        assert np.array_equal(
            recombine_digit_planes(planes), np.array([0, 1, 255, 256, -1])
        )

    def test_recombination_is_linear_under_matmul(self, rng):
        # (sum_j 2^{8j} d_j) @ B == sum_j 2^{8j} (d_j @ B)   (mod 2^32)
        values = rng.integers(-(2**20), 2**20, size=6)
        planes = signed_digit_planes(values)
        b = rng.integers(-128, 128, size=(6, 5))
        direct = wrap_array(values @ b, INT32)
        via_planes = recombine_digit_planes(planes @ b)
        assert np.array_equal(direct, via_planes)


class TestCleanExecution:
    def test_clean_run_verdict(self, rng):
        a = rng.integers(-128, 128, size=(12, 12))
        b = rng.integers(-128, 128, size=(12, 12))
        report = AbftGemm(FunctionalSimulator(MESH), OS)(a, b)
        assert report.verdict == "clean"
        assert not report.detected
        assert np.array_equal(report.output, reference_gemm(a, b))

    def test_operand_validation(self):
        abft = AbftGemm(FunctionalSimulator(MESH), OS)
        with pytest.raises(ValueError):
            abft(np.ones((2, 3)), np.ones((2, 2)))


class TestFaultyExecution:
    def _faulty(self, dataflow, site=(3, 5), bit=20):
        injector = FaultInjector.single_stuck_at(
            FaultSite(site[0], site[1], "sum", bit), 1
        )
        return AbftGemm(FunctionalSimulator(MESH, injector), dataflow)

    def test_os_single_element_corrected(self, rng):
        a = rng.integers(-128, 128, size=(12, 12))
        b = rng.integers(-128, 128, size=(12, 12))
        report = self._faulty(OS)(a, b)
        assert report.verdict == "corrected"
        assert report.correction_location == (3, 5)
        assert np.array_equal(report.output, reference_gemm(a, b))

    def test_ws_column_detected_not_corrected(self, rng):
        a = rng.integers(-128, 128, size=(12, 12))
        b = rng.integers(-128, 128, size=(12, 12))
        report = self._faulty(WS)(a, b)
        assert report.verdict == "detected"
        assert 5 in report.inconsistent_cols
        assert len(report.inconsistent_rows) > 1

    def test_low_bit_fault_also_handled(self, rng):
        a = rng.integers(-128, 128, size=(10, 10))
        b = rng.integers(-128, 128, size=(10, 10))
        report = self._faulty(OS, bit=0)(a, b)
        # Stuck-at-1 bit 0 may be masked on cells whose value is odd; when
        # it manifests, it must be corrected.
        if report.detected:
            assert report.corrected
            assert np.array_equal(report.output, reference_gemm(a, b))

    def test_fault_in_checksum_region_is_flagged_not_miscorrected(self, rng):
        # Data occupies rows 0-11; a fault in mesh row 12 can only hit the
        # digit-plane rows: ABFT must flag without corrupting live data.
        a = rng.integers(-128, 128, size=(12, 12))
        b = rng.integers(-128, 128, size=(12, 12))
        report = self._faulty(OS, site=(12, 5))(a, b)
        assert report.detected
        golden = reference_gemm(a, b)
        if report.corrected:
            assert np.array_equal(report.output, golden)
        else:
            # Data block itself was never corrupted.
            assert np.array_equal(report.output, golden)

    def test_tiled_abft_degrades_to_detection(self, rng):
        """When the augmented operands exceed one tile (RQ3's territory),
        the fault replicates across tiles, multiple rows and columns flag,
        and ABFT detects without claiming a correction."""
        small_mesh = MeshConfig(8, 8)
        a = rng.integers(-128, 128, size=(8, 8))  # augmented: 12x12 > 8x8
        b = rng.integers(-128, 128, size=(8, 8))
        injector = FaultInjector.single_stuck_at(FaultSite(0, 0, "sum", 20), 1)
        report = AbftGemm(FunctionalSimulator(small_mesh, injector), OS)(a, b)
        assert report.detected
        # The replicated fault also lands in the checksum planes, so the
        # row/col evidence no longer isolates one cell: no correction is
        # claimed (and none would be sound).
        assert not report.corrected

    def test_exhaustive_os_sweep_all_corrected(self, rng):
        """Every MAC in the data region yields a corrected run (ABFT's
        single-error guarantee, leveraging the OS pattern class)."""
        a = rng.integers(-128, 128, size=(8, 8))
        b = rng.integers(-128, 128, size=(8, 8))
        golden = reference_gemm(a, b)
        for row in range(8):
            for col in range(8):
                injector = FaultInjector.single_stuck_at(
                    FaultSite(row, col, "sum", 24), 1
                )
                report = AbftGemm(FunctionalSimulator(MESH, injector), OS)(a, b)
                assert np.array_equal(report.output, golden), (row, col)
