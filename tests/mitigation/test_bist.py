"""Unit tests for the BIST routine."""

import pytest

from repro.faults import FaultInjector, FaultSet, FaultSite, StuckAtFault
from repro.mitigation.bist import bist_vectors, run_bist
from repro.systolic import MeshConfig

MESH = MeshConfig(8, 8)


class TestTestVectors:
    def test_three_named_vectors_sized_to_mesh(self):
        vectors = bist_vectors(MESH)
        assert [name for name, _, _ in vectors] == [
            "ones",
            "max-negative",
            "random",
        ]
        for _, a, b in vectors:
            assert a.shape == (8, 8) and b.shape == (8, 8)
            assert a.min() >= -128 and a.max() <= 127

    def test_deterministic(self):
        first = bist_vectors(MESH, seed=3)
        second = bist_vectors(MESH, seed=3)
        for (_, a1, b1), (_, a2, b2) in zip(first, second):
            assert (a1 == a2).all() and (b1 == b2).all()


class TestHealthyMesh:
    def test_passes(self):
        report = run_bist(MESH, FaultInjector())
        assert report.passed
        assert report.faulty_macs == ()
        assert "passed" in report.describe()


class TestFaultyMesh:
    @pytest.mark.parametrize("bit,stuck", [(20, 1), (25, 0), (3, 1), (0, 0)])
    def test_locates_the_faulty_mac_exactly(self, bit, stuck):
        injector = FaultInjector.single_stuck_at(
            FaultSite(5, 6, "sum", bit), stuck
        )
        report = run_bist(MESH, injector)
        assert not report.passed
        assert report.faulty_macs == ((5, 6),)
        assert report.exposing_vectors  # at least one vector fired
        assert "FAILED" in report.describe()

    def test_high_bit_stuck_at_0_needs_the_negative_vector(self):
        """The ones vector cannot expose stuck-at-0 at bit 25 (its sums
        never reach that bit); the max-negative vector must."""
        injector = FaultInjector.single_stuck_at(
            FaultSite(2, 2, "sum", 25), 0
        )
        report = run_bist(MESH, injector)
        assert not report.passed
        assert "ones" not in report.exposing_vectors
        assert "max-negative" in report.exposing_vectors

    def test_multiple_faults_all_located(self):
        faults = FaultSet.of(
            StuckAtFault(site=FaultSite(0, 1, "sum", 20)),
            StuckAtFault(site=FaultSite(7, 4, "sum", 20)),
        )
        report = run_bist(MESH, FaultInjector(faults))
        assert set(report.faulty_macs) >= {(0, 1), (7, 4)}

    def test_operand_register_faults_detected(self):
        injector = FaultInjector.single_stuck_at(
            FaultSite(4, 4, "a_reg", 6), 1
        )
        report = run_bist(MESH, injector)
        assert not report.passed
        assert (4, 4) in report.faulty_macs

    def test_cycle_engine_variant(self):
        injector = FaultInjector.single_stuck_at(FaultSite(1, 1, "sum", 20), 1)
        report = run_bist(MeshConfig(4, 4), injector, engine="cycle")
        assert report.faulty_macs == ((1, 1),)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            run_bist(MESH, FaultInjector(), engine="asic")
