"""Unit tests for time redundancy and column off-lining."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultSet, FaultSite, StuckAtFault
from repro.mitigation.offlining import OffliningGemm
from repro.mitigation.redundancy import TemporalRedundantGemm
from repro.ops.reference import reference_gemm
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig(8, 8)
WS = Dataflow.WEIGHT_STATIONARY
OS = Dataflow.OUTPUT_STATIONARY
IS = Dataflow.INPUT_STATIONARY


def _injector(row=2, col=3, bit=22):
    return FaultInjector.single_stuck_at(FaultSite(row, col, "sum", bit), 1)


class TestTemporalRedundancy:
    def test_golden_run_agrees_everywhere(self, rng):
        a = rng.integers(-128, 128, size=(8, 8))
        b = rng.integers(-128, 128, size=(8, 8))
        report = TemporalRedundantGemm(FunctionalSimulator(MESH), WS)(a, b)
        assert not report.fault_detected
        assert report.fully_corrected
        assert np.array_equal(report.output, reference_gemm(a, b))

    @pytest.mark.parametrize("dataflow", [WS, OS, IS])
    def test_three_runs_correct_single_fault(self, rng, dataflow):
        a = rng.integers(-128, 128, size=(16, 8))
        b = rng.integers(-128, 128, size=(8, 16))
        report = TemporalRedundantGemm(
            FunctionalSimulator(MESH, _injector()), dataflow, runs=3
        )(a, b)
        assert report.fault_detected
        assert report.fully_corrected
        assert np.array_equal(report.output, reference_gemm(a, b))

    def test_two_runs_detect_but_may_not_correct(self, rng):
        a = rng.integers(-128, 128, size=(8, 8))
        b = rng.integers(-128, 128, size=(8, 8))
        report = TemporalRedundantGemm(
            FunctionalSimulator(MESH, _injector()), WS, runs=2
        )(a, b)
        assert report.fault_detected
        assert report.unresolved_cells > 0

    def test_run_count_validated(self):
        with pytest.raises(ValueError):
            TemporalRedundantGemm(FunctionalSimulator(MESH), WS, runs=1)
        # More runs than physical columns cannot give distinct placements.
        from repro.systolic import MeshConfig

        tiny = FunctionalSimulator(MeshConfig(2, 2))
        with pytest.raises(ValueError):
            TemporalRedundantGemm(tiny, WS, runs=3)

    def test_tiled_width_is_corrected(self, rng):
        """The case that defeats naive global rotation: output wider than
        the mesh, where a rotated column can revisit the faulty physical
        column through a different tile. Block rotation handles it."""
        a = rng.integers(-128, 128, size=(4, 4))
        b = rng.integers(-128, 128, size=(4, 13))  # 13 > 8 mesh cols
        report = TemporalRedundantGemm(
            FunctionalSimulator(MESH, _injector(0, 0)), WS, runs=3
        )(a, b)
        assert report.fully_corrected
        assert np.array_equal(report.output, reference_gemm(a, b))

    def test_operand_validation(self):
        tr = TemporalRedundantGemm(FunctionalSimulator(MESH), WS)
        with pytest.raises(ValueError):
            tr(np.ones((2, 3)), np.ones((2, 2)))


class TestOfflining:
    @pytest.mark.parametrize("dataflow", [WS, OS, IS])
    def test_restores_golden_output(self, rng, dataflow):
        a = rng.integers(-128, 128, size=(20, 8))
        b = rng.integers(-128, 128, size=(8, 20))
        off = OffliningGemm(
            FunctionalSimulator(MESH, _injector()), dataflow, [(2, 3)]
        )
        report = off(a, b)
        assert np.array_equal(report.output, reference_gemm(a, b))
        assert report.offlined_cols == (3,)

    def test_multiple_offlined_columns(self, rng):
        faults = FaultSet.of(
            StuckAtFault(site=FaultSite(1, 2, "sum", 22)),
            StuckAtFault(site=FaultSite(5, 6, "sum", 22)),
        )
        a = rng.integers(-128, 128, size=(10, 8))
        b = rng.integers(-128, 128, size=(8, 10))
        off = OffliningGemm(
            FunctionalSimulator(MESH, FaultInjector(faults)),
            WS,
            [(1, 2), (5, 6)],
        )
        report = off(a, b)
        assert np.array_equal(report.output, reference_gemm(a, b))
        assert report.offlined_cols == (2, 6)

    def test_overhead_reported_when_width_shrinks(self, rng):
        # 8 output columns on 8 physical columns: off-lining one forces a
        # second column tile.
        a = rng.integers(-128, 128, size=(8, 8))
        b = rng.integers(-128, 128, size=(8, 8))
        off = OffliningGemm(
            FunctionalSimulator(MESH, _injector()), WS, [(2, 3)]
        )
        report = off(a, b)
        assert report.tiles_baseline == 1
        assert report.tiles_used == 2
        assert report.overhead_ratio == 2.0

    def test_cannot_offline_everything(self):
        with pytest.raises(ValueError):
            OffliningGemm(
                FunctionalSimulator(MESH),
                WS,
                [(0, c) for c in range(8)],
            )

    def test_operand_validation(self):
        off = OffliningGemm(FunctionalSimulator(MESH), WS, [(0, 0)])
        with pytest.raises(ValueError):
            off(np.ones((2, 3)), np.ones((2, 2)))

    def test_golden_engine_unaffected(self, rng):
        # Off-lining on a healthy mesh still computes correctly (just
        # wastes a column).
        a = rng.integers(-128, 128, size=(9, 9))
        b = rng.integers(-128, 128, size=(9, 9))
        off = OffliningGemm(FunctionalSimulator(MESH), OS, [(0, 5)])
        assert np.array_equal(off(a, b).output, reference_gemm(a, b))
