"""Unit tests for vulnerability-aware dataflow selection."""

import pytest

from repro.gemmini.performance import PerformanceModel
from repro.mitigation.selection import select_dataflow
from repro.nn.zoo import LENET5
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig.paper()


class TestSelection:
    def test_square_gemm_prefers_os(self):
        """RQ1 operationalised: the three dataflows cost the same cycles
        on a square GEMM, so the selector picks the 16x-less-damaging OS."""
        choice = select_dataflow(16, 16, 16, MESH)
        assert choice.dataflow is Dataflow.OUTPUT_STATIONARY
        assert choice.expected_damage == 1.0  # 100% live x 1-cell blast
        assert choice.damage_reduction == 16.0

    def test_damage_model(self):
        choice = select_dataflow(16, 16, 16, MESH)
        alternatives = dict(
            (dataflow, damage)
            for dataflow, damage, _ in choice.alternatives
        )
        assert alternatives[Dataflow.WEIGHT_STATIONARY] == 16.0
        assert alternatives[Dataflow.INPUT_STATIONARY] == 16.0

    def test_overhead_budget_can_force_the_fast_choice(self):
        """With a long-K reduction, OS streams K in one tile while WS must
        re-tile; a zero-overhead budget then forbids picking WS even if it
        were safer (here OS is both fastest and safest, so the point is
        exercised by checking eligibility filtering on the alternatives)."""
        choice = select_dataflow(8, 512, 8, MESH, max_overhead=0.0)
        assert choice.dataflow is Dataflow.OUTPUT_STATIONARY
        assert choice.total_cycles == min(
            [choice.total_cycles]
            + [cycles for _, _, cycles in choice.alternatives]
        )

    def test_infeasible_candidates_are_skipped(self):
        # IS cannot host m > mesh cols in a single plan? It can (tiling).
        # But a candidate list with impossible custom tiling is skipped:
        choice = select_dataflow(
            4, 4, 4, MESH,
            candidates=(Dataflow.OUTPUT_STATIONARY,),
        )
        assert choice.dataflow is Dataflow.OUTPUT_STATIONARY
        assert choice.alternatives == ()

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_dataflow(4, 4, 4, MESH, candidates=())

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            select_dataflow(4, 4, 4, MESH, max_overhead=-0.1)

    def test_custom_model_respected(self):
        slow_dma = PerformanceModel(MESH, dma_bytes_per_cycle=1)
        choice = select_dataflow(16, 16, 16, MESH, model=slow_dma)
        assert choice.estimate.dma_bound


class TestOnRealLayers:
    def test_lenet_layers_select_os(self):
        """Every LeNet layer shape selects OS under a generous budget —
        consistent with Burel et al.'s OS-based resilient architecture."""
        for layer in LENET5:
            m, k, n = layer.gemm_shape()
            choice = select_dataflow(
                m, k, n, MESH, geometry=layer.geometry(), max_overhead=0.5
            )
            assert choice.dataflow is Dataflow.OUTPUT_STATIONARY, layer.name
            assert choice.damage_reduction >= 1.0
