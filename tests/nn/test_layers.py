"""Unit tests for the inference layers."""

import numpy as np
import pytest

from repro.nn.backends import ReferenceBackend, SystolicBackend
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.ops.reference import reference_conv2d
from repro.systolic import MeshConfig


class TestConv2D:
    def test_forward_matches_reference_with_shift(self, rng):
        w = rng.integers(-5, 5, size=(2, 1, 3, 3))
        x = rng.integers(0, 50, size=(1, 1, 6, 6))
        layer = Conv2D(w, stride=1, padding=1, shift=2)
        expected = reference_conv2d(x, w, padding=1)
        # Requantised: round-half-up shift, saturated to INT8.
        out = layer.forward(x)
        assert out.shape == expected.shape
        assert out.max() <= 127 and out.min() >= -128

    def test_raw_int32_when_shift_none(self, rng):
        w = rng.integers(-5, 5, size=(2, 1, 2, 2))
        x = rng.integers(0, 50, size=(1, 1, 4, 4))
        layer = Conv2D(w, shift=None)
        assert np.array_equal(layer.forward(x), reference_conv2d(x, w))

    def test_bias(self):
        w = np.ones((1, 1, 1, 1), dtype=np.int64)
        layer = Conv2D(w, bias=np.array([100]), shift=None)
        out = layer.forward(np.zeros((1, 1, 2, 2), dtype=np.int64))
        assert np.all(out == 100)

    def test_bias_shape_checked(self):
        with pytest.raises(ValueError):
            Conv2D(np.ones((2, 1, 1, 1)), bias=np.ones(3))

    def test_weights_must_be_4d(self):
        with pytest.raises(ValueError):
            Conv2D(np.ones((2, 2)))

    def test_weights_wrap_to_int8(self):
        layer = Conv2D(np.full((1, 1, 1, 1), 130), shift=None)
        assert layer.weights[0, 0, 0, 0] == -126

    def test_systolic_backend_equivalent(self, rng):
        w = rng.integers(-5, 5, size=(2, 2, 3, 3))
        x = rng.integers(-20, 20, size=(1, 2, 5, 5))
        layer = Conv2D(w, padding=1, shift=None)
        golden = layer.forward(x)
        layer.set_backend(SystolicBackend(MeshConfig(4, 4)))
        assert np.array_equal(layer.forward(x), golden)


class TestDense:
    def test_forward(self, rng):
        w = rng.integers(-5, 5, size=(6, 3))
        x = rng.integers(-20, 20, size=(2, 6))
        layer = Dense(w, shift=None)
        assert np.array_equal(layer.forward(x), x @ w)

    def test_bias(self):
        layer = Dense(np.zeros((2, 2), dtype=np.int64),
                      bias=np.array([5, -5]), shift=None)
        out = layer.forward(np.ones((1, 2), dtype=np.int64))
        assert out.tolist() == [[5, -5]]

    def test_requantized_output(self):
        layer = Dense(np.full((1, 1), 4, dtype=np.int64), shift=2)
        out = layer.forward(np.array([[8]]))
        assert out[0, 0] == 8  # 32 >> 2

    def test_input_shape_checked(self):
        layer = Dense(np.ones((3, 2)))
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 4)))
        with pytest.raises(ValueError):
            layer.forward(np.ones(3))

    def test_weights_must_be_2d(self):
        with pytest.raises(ValueError):
            Dense(np.ones(3))

    def test_bias_shape_checked(self):
        with pytest.raises(ValueError):
            Dense(np.ones((2, 2)), bias=np.ones(3))


class TestElementwiseLayers:
    def test_relu(self):
        out = ReLU().forward(np.array([-3, 0, 5]))
        assert out.tolist() == [0, 0, 5]

    def test_maxpool(self):
        x = np.arange(16).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0].tolist() == [[5, 7], [13, 15]]

    def test_maxpool_requires_divisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 4)))

    def test_maxpool_requires_nchw(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((4, 4)))

    def test_maxpool_size_validated(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)

    def test_flatten(self):
        out = Flatten().forward(np.zeros((2, 3, 4)))
        assert out.shape == (2, 12)

    def test_set_backend_is_noop_for_elementwise(self):
        ReLU().set_backend(ReferenceBackend())  # must not raise
