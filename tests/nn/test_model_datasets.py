"""Unit tests for the model container, datasets, and fault backends."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultSet, FaultSite, StuckAtFault
from repro.nn import (
    DIGIT_TEMPLATES,
    ReferenceBackend,
    Sequential,
    SystolicBackend,
    accuracy,
    build_conv_classifier,
    build_dense_classifier,
    make_digits,
)
from repro.nn.layers import Dense, Flatten
from repro.systolic import Dataflow, MeshConfig


class TestSequential:
    def test_forward_chains_layers(self):
        model = Sequential([Flatten(), Dense(np.eye(4, dtype=np.int64), shift=None)])
        x = np.arange(8).reshape(2, 2, 2)
        assert np.array_equal(model.forward(x), x.reshape(2, 4))

    def test_predict_argmax(self):
        model = Sequential([Dense(np.eye(3, dtype=np.int64), shift=None)])
        x = np.array([[1, 5, 2], [9, 0, 0]])
        assert model.predict(x).tolist() == [1, 0]

    def test_predict_requires_2d_logits(self):
        model = Sequential([])
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 2, 2)))

    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)
        assert accuracy(np.array([]), np.array([])) == 0.0
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestDataset:
    def test_templates_are_distinct(self):
        flat = DIGIT_TEMPLATES.reshape(10, -1)
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(flat[i], flat[j])

    def test_make_digits_shapes_and_ranges(self):
        x, y = make_digits(50, noise=0.1, seed=0)
        assert x.shape == (50, 1, 8, 8)
        assert y.shape == (50,)
        assert x.min() >= 0 and x.max() <= 127
        assert set(np.unique(y)).issubset(set(range(10)))

    def test_deterministic(self):
        a = make_digits(20, seed=5)
        b = make_digits(20, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_zero_noise_equals_templates(self):
        x, y = make_digits(20, noise=0.0, jitter=False, brightness=60, seed=1)
        for img, label in zip(x, y):
            assert np.array_equal(img[0], DIGIT_TEMPLATES[label] * 60)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_digits(0)
        with pytest.raises(ValueError):
            make_digits(5, noise=1.5)
        with pytest.raises(ValueError):
            make_digits(5, brightness=200)


class TestClassifiers:
    def test_dense_classifier_healthy_baseline(self):
        x, y = make_digits(300, noise=0.05, seed=2)
        assert build_dense_classifier().evaluate(x, y) > 0.85

    def test_conv_classifier_healthy_baseline(self):
        x, y = make_digits(300, noise=0.05, seed=2)
        assert build_conv_classifier().evaluate(x, y) > 0.8

    def test_perfect_on_clean_data(self):
        x, y = make_digits(100, noise=0.0, seed=3)
        assert build_dense_classifier().evaluate(x, y) == 1.0


class TestFaultyBackends:
    def test_systolic_backend_matches_reference_when_golden(self):
        x, y = make_digits(60, noise=0.05, seed=4)
        model = build_dense_classifier()
        golden = model.predict(x)
        model.set_backend(SystolicBackend(MeshConfig(16, 16)))
        assert np.array_equal(model.predict(x), golden)

    def test_faulty_mesh_degrades_accuracy(self):
        x, y = make_digits(100, noise=0.03, seed=5)
        model = build_dense_classifier()
        baseline = model.evaluate(x, y)
        inj = FaultInjector.single_stuck_at(FaultSite(0, 2, "sum", 28), 1)
        model.set_backend(
            SystolicBackend(MeshConfig(16, 16), inj, Dataflow.WEIGHT_STATIONARY)
        )
        assert model.evaluate(x, y) < baseline

    def test_fault_in_unused_region_is_harmless(self):
        # Dense workload is (batch, 64) @ (64, 10): only mesh columns 0-9
        # are live in the final WS tile; a column-15 fault never shows.
        x, y = make_digits(40, noise=0.03, seed=6)
        model = build_dense_classifier()
        golden = model.predict(x)
        inj = FaultInjector.single_stuck_at(FaultSite(0, 15, "sum", 28), 1)
        model.set_backend(
            SystolicBackend(MeshConfig(16, 16), inj, Dataflow.WEIGHT_STATIONARY)
        )
        assert np.array_equal(model.predict(x), golden)
