"""Unit tests for INT8 quantisation helpers."""

import numpy as np
import pytest

from repro.nn.quantize import dequantize, quantize_symmetric, requantize_shift


class TestQuantizeSymmetric:
    def test_roundtrip_error_bounded(self, rng):
        values = rng.normal(0, 2, size=100)
        quantized, scale = quantize_symmetric(values)
        recovered = dequantize(quantized, scale)
        assert np.max(np.abs(recovered - values)) <= scale / 2 + 1e-12

    def test_peak_maps_to_max(self):
        quantized, scale = quantize_symmetric(np.array([-4.0, 2.0]))
        assert quantized[0] == -127
        assert scale == pytest.approx(4.0 / 127)

    def test_all_zero_input(self):
        quantized, scale = quantize_symmetric(np.zeros(5))
        assert np.all(quantized == 0)
        assert scale == 1.0

    def test_range_respected(self, rng):
        quantized, _ = quantize_symmetric(rng.normal(0, 100, size=1000))
        assert quantized.max() <= 127
        assert quantized.min() >= -128


class TestRequantizeShift:
    def test_shift_divides(self):
        acc = np.array([64, 128, -64])
        assert requantize_shift(acc, 4).tolist() == [4, 8, -4]

    def test_rounds_half_up(self):
        # 24 / 16 = 1.5 -> rounds to 2.
        assert requantize_shift(np.array([24]), 4)[0] == 2

    def test_saturates_to_int8(self):
        assert requantize_shift(np.array([10**6]), 4)[0] == 127
        assert requantize_shift(np.array([-(10**6)]), 4)[0] == -128

    def test_zero_shift_is_clamp_only(self):
        assert requantize_shift(np.array([300, -300, 5]), 0).tolist() == [
            127,
            -128,
            5,
        ]

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            requantize_shift(np.array([1]), -1)
