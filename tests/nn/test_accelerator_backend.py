"""Unit tests for the full-stack accelerator inference backend."""

import numpy as np

from repro.faults import FaultInjector, FaultSite
from repro.nn import build_dense_classifier, make_digits
from repro.nn.backends import AcceleratorBackend, ReferenceBackend
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig.paper()


class TestGoldenEquivalence:
    def test_predictions_match_reference(self):
        x, y = make_digits(40, noise=0.03, seed=13)
        model = build_dense_classifier()
        model.set_backend(ReferenceBackend())
        expected = model.predict(x)
        model.set_backend(AcceleratorBackend(MESH))
        assert np.array_equal(model.predict(x), expected)

    def test_conv_path(self, rng):
        backend = AcceleratorBackend(MeshConfig(4, 4))
        x = rng.integers(-50, 50, size=(1, 2, 6, 6))
        w = rng.integers(-50, 50, size=(3, 2, 3, 3))
        golden = ReferenceBackend().conv2d(x, w, 1, 1)
        assert np.array_equal(backend.conv2d(x, w, 1, 1), golden)

    def test_stats_accumulate_across_layers(self):
        x, _ = make_digits(10, seed=0)
        model = build_dense_classifier()
        backend = AcceleratorBackend(MESH)
        model.set_backend(backend)
        model.predict(x)
        stats = backend.accelerator.stats()
        assert stats.controller.computes > 0
        assert stats.dma_bytes_in > 0


class TestFaultyStack:
    def test_fault_degrades_like_bare_engine(self):
        x, y = make_digits(80, noise=0.03, seed=14)
        injector = FaultInjector.single_stuck_at(FaultSite(0, 4, "sum", 28), 1)
        model = build_dense_classifier()
        model.set_backend(ReferenceBackend())
        baseline = model.evaluate(x, y)
        model.set_backend(
            AcceleratorBackend(MESH, injector, Dataflow.WEIGHT_STATIONARY)
        )
        assert model.evaluate(x, y) < baseline - 0.3
