"""Unit tests for the golden numpy references."""

import numpy as np
import pytest

from repro.ops.reference import reference_conv2d, reference_gemm, uniform_ones


class TestReferenceGemm:
    def test_small_product(self):
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[5, 6], [7, 8]])
        assert np.array_equal(reference_gemm(a, b), a @ b)

    def test_operands_wrap_to_int8(self):
        # 130 wraps to -126 before multiplying.
        out = reference_gemm(np.array([[130]]), np.array([[1]]))
        assert out[0, 0] == -126

    def test_accumulator_wraps_to_int32(self):
        k = 200000
        a = np.full((1, k), 127, dtype=np.int64)
        b = np.full((k, 1), 127, dtype=np.int64)
        expected = ((127 * 127 * k + 2**31) % 2**32) - 2**31
        assert reference_gemm(a, b)[0, 0] == expected

    def test_bias(self):
        a = np.eye(2, dtype=np.int64)
        b = np.eye(2, dtype=np.int64)
        bias = np.array([[10, 0], [0, -10]])
        assert np.array_equal(reference_gemm(a, b, bias=bias), np.eye(2) + bias)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reference_gemm(np.ones((2, 3)), np.ones((2, 3)))


class TestReferenceConv2d:
    def test_known_3x3_sum(self):
        x = np.ones((1, 1, 3, 3), dtype=np.int64)
        w = np.ones((1, 1, 3, 3), dtype=np.int64)
        out = reference_conv2d(x, w)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == 9

    def test_padding_grows_output(self):
        x = np.ones((1, 1, 3, 3), dtype=np.int64)
        w = np.ones((1, 1, 3, 3), dtype=np.int64)
        out = reference_conv2d(x, w, padding=1)
        assert out.shape == (1, 1, 3, 3)
        assert out[0, 0, 1, 1] == 9  # centre sees the full window
        assert out[0, 0, 0, 0] == 4  # corner sees 2x2 of the input

    def test_multi_channel_sum(self):
        x = np.ones((1, 3, 2, 2), dtype=np.int64)
        w = np.ones((2, 3, 2, 2), dtype=np.int64)
        out = reference_conv2d(x, w)
        assert out.shape == (1, 2, 1, 1)
        assert np.all(out == 12)  # 3 channels * 4 taps

    def test_bias_per_channel(self):
        x = np.ones((1, 1, 2, 2), dtype=np.int64)
        w = np.ones((2, 1, 2, 2), dtype=np.int64)
        out = reference_conv2d(x, w, bias=np.array([100, -100]))
        assert out[0, 0, 0, 0] == 104
        assert out[0, 1, 0, 0] == -96

    def test_bias_shape_checked(self):
        with pytest.raises(ValueError):
            reference_conv2d(
                np.ones((1, 1, 2, 2)), np.ones((2, 1, 2, 2)), bias=np.ones(3)
            )


class TestUniformOnes:
    def test_shape_and_value(self):
        ones = uniform_ones(3, 4)
        assert ones.shape == (3, 4)
        assert np.all(ones == 1)
        assert ones.dtype == np.int64
