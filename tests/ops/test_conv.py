"""Unit tests for systolic convolution execution."""

import numpy as np
import pytest

from repro.ops.conv import SystolicConv2d
from repro.ops.reference import reference_conv2d
from repro.systolic import CycleSimulator, Dataflow, FunctionalSimulator

from tests.conftest import stuck_at


class TestGolden:
    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_matches_direct_convolution(self, mesh4, rng, dataflow):
        x = rng.integers(-50, 50, size=(2, 3, 6, 6))
        w = rng.integers(-50, 50, size=(4, 3, 3, 3))
        conv = SystolicConv2d(FunctionalSimulator(mesh4), dataflow, padding=1)
        assert np.array_equal(conv(x, w).output, reference_conv2d(x, w, padding=1))

    def test_cycle_engine(self, mesh4, rng):
        x = rng.integers(-50, 50, size=(1, 2, 5, 5))
        w = rng.integers(-50, 50, size=(3, 2, 2, 2))
        conv = SystolicConv2d(CycleSimulator(mesh4))
        assert np.array_equal(conv(x, w).output, reference_conv2d(x, w))

    def test_stride(self, mesh4, rng):
        x = rng.integers(-50, 50, size=(1, 1, 9, 9))
        w = rng.integers(-50, 50, size=(2, 1, 3, 3))
        conv = SystolicConv2d(FunctionalSimulator(mesh4), stride=2)
        assert np.array_equal(
            conv(x, w).output, reference_conv2d(x, w, stride=2)
        )

    def test_channel_bias(self, mesh4, rng):
        x = rng.integers(-50, 50, size=(1, 2, 5, 5))
        w = rng.integers(-50, 50, size=(3, 2, 3, 3))
        bias = rng.integers(-100, 100, size=(3,))
        conv = SystolicConv2d(FunctionalSimulator(mesh4))
        assert np.array_equal(
            conv(x, w, bias=bias).output, reference_conv2d(x, w, bias=bias)
        )

    def test_bias_shape_checked(self, mesh4):
        conv = SystolicConv2d(FunctionalSimulator(mesh4))
        with pytest.raises(ValueError):
            conv(np.ones((1, 1, 4, 4)), np.ones((2, 1, 2, 2)), bias=np.ones(3))

    def test_result_metadata(self, mesh4):
        conv = SystolicConv2d(FunctionalSimulator(mesh4))
        result = conv(np.ones((1, 1, 5, 5)), np.ones((2, 1, 2, 2)))
        assert result.geometry.k == 2
        assert result.plan.n == 2  # GEMM columns = output channels
        assert result.gemm_view.shape == (result.geometry.gemm_m, 2)


class TestFaultyChannelMapping:
    """The RQ2 signature: a WS fault corrupts whole output channels."""

    def test_single_channel_corruption(self, mesh4):
        x = np.ones((1, 3, 6, 6), dtype=np.int64)
        w = np.ones((3, 3, 3, 3), dtype=np.int64)  # K=3 <= mesh cols
        golden = reference_conv2d(x, w)
        conv = SystolicConv2d(
            FunctionalSimulator(mesh4, stuck_at(1, 2, bit=20)),
            Dataflow.WEIGHT_STATIONARY,
        )
        faulty = conv(x, w).output
        diff = golden != faulty
        corrupted_channels = sorted(set(np.where(diff.any(axis=(0, 2, 3)))[0]))
        assert corrupted_channels == [2]
        # The whole channel is corrupted, every spatial position.
        assert diff[:, 2].all()

    def test_multi_channel_corruption_when_k_exceeds_mesh(self, mesh4):
        x = np.ones((1, 3, 6, 6), dtype=np.int64)
        w = np.ones((6, 3, 3, 3), dtype=np.int64)  # K=6 > 4 mesh cols
        golden = reference_conv2d(x, w)
        conv = SystolicConv2d(
            FunctionalSimulator(mesh4, stuck_at(0, 1, bit=20)),
            Dataflow.WEIGHT_STATIONARY,
        )
        faulty = conv(x, w).output
        diff = golden != faulty
        corrupted_channels = sorted(set(np.where(diff.any(axis=(0, 2, 3)))[0]))
        assert corrupted_channels == [1, 5]  # channels c and c + mesh_cols

    def test_os_fault_corrupts_sparse_elements(self, mesh4):
        x = np.ones((1, 1, 5, 5), dtype=np.int64)
        w = np.ones((2, 1, 2, 2), dtype=np.int64)
        golden = reference_conv2d(x, w)
        conv = SystolicConv2d(
            FunctionalSimulator(mesh4, stuck_at(1, 0, bit=20)),
            Dataflow.OUTPUT_STATIONARY,
        )
        faulty = conv(x, w).output
        diff = golden != faulty
        # OS corrupts one GEMM cell per output tile -> a few pixels of one
        # channel, never the whole channel.
        assert 0 < diff.sum() < diff[:, 0].size
