"""Unit tests for the tiled GEMM executor."""

import numpy as np
import pytest

from repro.ops.gemm import TiledGemm
from repro.ops.reference import reference_gemm
from repro.systolic import CycleSimulator, Dataflow, FunctionalSimulator

from tests.conftest import stuck_at


class TestGoldenTiling:
    @pytest.mark.parametrize("dataflow", list(Dataflow))
    @pytest.mark.parametrize("shape", [(4, 4, 4), (9, 7, 11), (1, 13, 1), (5, 1, 8)])
    def test_matches_reference(self, mesh4, rng, dataflow, shape):
        m, k, n = shape
        a = rng.integers(-128, 128, size=(m, k))
        b = rng.integers(-128, 128, size=(k, n))
        result = TiledGemm(FunctionalSimulator(mesh4))(a, b, dataflow)
        assert np.array_equal(result.output, reference_gemm(a, b))

    def test_cycle_engine_tiled(self, mesh4, rng):
        a = rng.integers(-128, 128, size=(6, 9))
        b = rng.integers(-128, 128, size=(9, 5))
        for dataflow in Dataflow:
            result = TiledGemm(CycleSimulator(mesh4))(a, b, dataflow)
            assert np.array_equal(result.output, reference_gemm(a, b))

    def test_bias(self, mesh4, rng):
        a = rng.integers(-128, 128, size=(6, 6))
        b = rng.integers(-128, 128, size=(6, 6))
        bias = rng.integers(-(2**20), 2**20, size=(6, 6))
        result = TiledGemm(FunctionalSimulator(mesh4))(
            a, b, Dataflow.WEIGHT_STATIONARY, bias=bias
        )
        assert np.array_equal(result.output, reference_gemm(a, b, bias=bias))

    def test_wrapping_accumulation(self, mesh4):
        # Large K forces INT32 overflow; wrap must match the reference.
        a = np.full((2, 300000), 127, dtype=np.int64)
        b = np.full((300000, 2), 127, dtype=np.int64)
        result = TiledGemm(FunctionalSimulator(mesh4), tile_k=4)(
            a, b, Dataflow.OUTPUT_STATIONARY
        )
        assert np.array_equal(result.output, reference_gemm(a, b))

    def test_plan_travels_with_result(self, mesh4, rng):
        a = rng.integers(-10, 10, size=(9, 4))
        b = rng.integers(-10, 10, size=(4, 9))
        result = TiledGemm(FunctionalSimulator(mesh4))(a, b, Dataflow.WEIGHT_STATIONARY)
        assert result.plan.is_tiled
        assert result.shape == (9, 9)


class TestReductionModes:
    def test_modes_identical_on_golden_mesh(self, mesh4, rng):
        a = rng.integers(-128, 128, size=(10, 10))
        b = rng.integers(-128, 128, size=(10, 10))
        for dataflow in Dataflow:
            mesh_mode = TiledGemm(FunctionalSimulator(mesh4), reduction="mesh")
            mem_mode = TiledGemm(FunctionalSimulator(mesh4), reduction="memory")
            assert np.array_equal(
                mesh_mode(a, b, dataflow).output, mem_mode(a, b, dataflow).output
            )

    def test_modes_share_pattern_class_under_fault(self, mesh4):
        ones = np.ones((12, 12), dtype=np.int64)
        golden = reference_gemm(ones, ones)
        inj = stuck_at(1, 2, bit=20)
        for mode in ("mesh", "memory"):
            out = TiledGemm(FunctionalSimulator(mesh4, inj), reduction=mode)(
                ones, ones, Dataflow.WEIGHT_STATIONARY
            ).output
            diff_cols = sorted(set(np.where(golden != out)[1]))
            assert diff_cols == [2, 6, 10]

    def test_invalid_mode_rejected(self, mesh4):
        with pytest.raises(ValueError):
            TiledGemm(FunctionalSimulator(mesh4), reduction="bogus")


class TestFaultyTiling:
    def test_ws_fault_repeats_across_column_tiles(self, mesh4):
        ones = np.ones((12, 12), dtype=np.int64)
        golden = reference_gemm(ones, ones)
        faulty = TiledGemm(FunctionalSimulator(mesh4, stuck_at(2, 1)))(
            ones, ones, Dataflow.WEIGHT_STATIONARY
        ).output
        diff = golden != faulty
        for col in (1, 5, 9):
            assert diff[:, col].all()
        assert diff.sum() == 3 * 12

    def test_os_fault_repeats_across_all_output_tiles(self, mesh4):
        ones = np.ones((12, 12), dtype=np.int64)
        golden = reference_gemm(ones, ones)
        faulty = TiledGemm(FunctionalSimulator(mesh4, stuck_at(2, 1)))(
            ones, ones, Dataflow.OUTPUT_STATIONARY
        ).output
        coords = set(zip(*np.where(golden != faulty)))
        assert coords == {(r, c) for r in (2, 6, 10) for c in (1, 5, 9)}

    def test_edge_tiles_drop_out_of_range_fault(self, mesh4):
        # 10x10 on a 4x4 mesh: last tile is 2 wide; a fault in mesh col 3
        # has no image in that tile.
        ones = np.ones((10, 10), dtype=np.int64)
        golden = reference_gemm(ones, ones)
        faulty = TiledGemm(FunctionalSimulator(mesh4, stuck_at(0, 3)))(
            ones, ones, Dataflow.WEIGHT_STATIONARY
        ).output
        cols = sorted(set(np.where(golden != faulty)[1]))
        assert cols == [3, 7]  # no column 11


class TestValidation:
    def test_bias_shape_checked(self, mesh4):
        gemm = TiledGemm(FunctionalSimulator(mesh4))
        with pytest.raises(ValueError):
            gemm(
                np.ones((4, 4)),
                np.ones((4, 4)),
                Dataflow.OUTPUT_STATIONARY,
                bias=np.ones((2, 2)),
            )

    def test_operand_shapes_checked(self, mesh4):
        gemm = TiledGemm(FunctionalSimulator(mesh4))
        with pytest.raises(ValueError):
            gemm(np.ones((4, 3)), np.ones((4, 4)), Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(ValueError):
            gemm(np.ones(4), np.ones((4, 4)), Dataflow.OUTPUT_STATIONARY)
