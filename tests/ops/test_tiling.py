"""Unit tests for operation tiling (paper Section II-C)."""

import pytest

from repro.ops.tiling import TileRange, TilingPlan, plan_gemm_tiling, split_ranges
from repro.systolic import Dataflow, MeshConfig


class TestSplitRanges:
    def test_exact_split(self):
        ranges = split_ranges(8, 4)
        assert [(r.start, r.stop) for r in ranges] == [(0, 4), (4, 8)]
        assert [r.index for r in ranges] == [0, 1]

    def test_ragged_tail(self):
        ranges = split_ranges(10, 4)
        assert [(r.start, r.stop) for r in ranges] == [(0, 4), (4, 8), (8, 10)]
        assert ranges[-1].size == 2

    def test_single_tile(self):
        ranges = split_ranges(3, 16)
        assert len(ranges) == 1
        assert ranges[0].size == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_ranges(0, 4)
        with pytest.raises(ValueError):
            split_ranges(4, 0)

    def test_tile_range_validation(self):
        with pytest.raises(ValueError):
            TileRange(index=0, start=2, stop=2)


class TestPaperExample:
    """Section II-C: a 4x4 GEMM on a 2x2 array splits into 2x2 tiles."""

    def test_eq_2_to_4(self):
        mesh = MeshConfig(2, 2)
        plan = plan_gemm_tiling(4, 4, 4, mesh, Dataflow.OUTPUT_STATIONARY)
        assert len(plan.m_tiles) == 2
        assert len(plan.k_tiles) == 2
        assert len(plan.n_tiles) == 2
        # Eq. (4): four output tiles, each from two matmuls = 8 matmuls.
        assert plan.num_output_tiles == 4
        assert plan.num_tile_matmuls == 8


class TestTilingPlan:
    def test_untiled_when_fits(self, mesh16):
        plan = plan_gemm_tiling(16, 16, 16, mesh16, Dataflow.WEIGHT_STATIONARY)
        assert not plan.is_tiled
        assert plan.num_output_tiles == 1

    def test_paper_112_config(self, mesh16):
        plan = plan_gemm_tiling(112, 112, 112, mesh16, Dataflow.WEIGHT_STATIONARY)
        assert plan.is_tiled
        assert len(plan.m_tiles) == 7
        assert plan.num_output_tiles == 49
        assert plan.num_tile_matmuls == 343

    def test_reduction_only_tiling_is_not_spatial(self, mesh4):
        # K > mesh but M, N fit: reduction tiles accumulate in place.
        plan = plan_gemm_tiling(4, 20, 4, mesh4, Dataflow.OUTPUT_STATIONARY,
                                tile_k=4)
        assert len(plan.k_tiles) == 5
        assert not plan.is_tiled

    def test_output_tiles_row_major(self, mesh4):
        plan = plan_gemm_tiling(8, 4, 8, mesh4, Dataflow.OUTPUT_STATIONARY)
        order = [(m.index, n.index) for m, n in plan.output_tiles()]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_output_rows_for_mesh_row(self, mesh4):
        plan = plan_gemm_tiling(10, 4, 4, mesh4, Dataflow.OUTPUT_STATIONARY)
        # mesh row 1 maps to global rows 1, 5, 9
        assert plan.output_rows_for_mesh_row(1) == (1, 5, 9)
        # mesh row 3 maps to 3, 7 — the last tile has only 2 rows
        assert plan.output_rows_for_mesh_row(3) == (3, 7)

    def test_output_cols_for_mesh_col(self, mesh4):
        plan = plan_gemm_tiling(4, 4, 9, mesh4, Dataflow.WEIGHT_STATIONARY)
        assert plan.output_cols_for_mesh_col(0) == (0, 4, 8)
        assert plan.output_cols_for_mesh_col(2) == (2, 6)


class TestValidation:
    def test_os_constraints(self, mesh4):
        with pytest.raises(ValueError):
            plan_gemm_tiling(8, 4, 4, mesh4, Dataflow.OUTPUT_STATIONARY, tile_m=8)
        with pytest.raises(ValueError):
            plan_gemm_tiling(4, 4, 8, mesh4, Dataflow.OUTPUT_STATIONARY, tile_n=8)

    def test_ws_constraints(self, mesh4):
        with pytest.raises(ValueError):
            plan_gemm_tiling(4, 8, 4, mesh4, Dataflow.WEIGHT_STATIONARY, tile_k=8)
        with pytest.raises(ValueError):
            plan_gemm_tiling(4, 4, 8, mesh4, Dataflow.WEIGHT_STATIONARY, tile_n=8)

    def test_ws_allows_large_tile_m(self, mesh4):
        # M is the stream dimension under WS — no mesh constraint.
        plan = plan_gemm_tiling(
            100, 4, 4, mesh4, Dataflow.WEIGHT_STATIONARY, tile_m=100
        )
        assert len(plan.m_tiles) == 1

    def test_os_allows_large_tile_k(self, mesh4):
        plan = plan_gemm_tiling(
            4, 100, 4, mesh4, Dataflow.OUTPUT_STATIONARY, tile_k=100
        )
        assert len(plan.k_tiles) == 1

    def test_nonpositive_dims_rejected(self, mesh4):
        with pytest.raises(ValueError):
            plan_gemm_tiling(0, 4, 4, mesh4, Dataflow.OUTPUT_STATIONARY)
