"""Unit tests for the im2col convolution lowering (paper Section II-B)."""

import numpy as np
import pytest

from repro.ops.im2col import ConvGeometry, col2im_output, im2col, kernel_to_matrix
from repro.ops.reference import reference_conv2d, reference_gemm


class TestConvGeometry:
    def test_paper_notation_dimensions(self):
        # 16x16 input, 3x3x3x8 kernel (RxSxCxK) -> paper Section II-B dims.
        g = ConvGeometry(n=1, c=3, h=16, w=16, k=8, r=3, s=3)
        assert (g.p, g.q) == (14, 14)
        assert g.gemm_m == 1 * 14 * 14  # N*P*Q
        assert g.gemm_k == 3 * 3 * 3  # C*R*S
        assert g.gemm_n == 8  # K

    def test_padding_and_stride(self):
        g = ConvGeometry(n=1, c=1, h=8, w=8, k=1, r=3, s=3, stride=2, padding=1)
        assert (g.p, g.q) == (4, 4)

    def test_from_tensors(self):
        x = np.zeros((2, 3, 10, 12))
        w = np.zeros((5, 3, 3, 3))
        g = ConvGeometry.from_tensors(x, w)
        assert (g.n, g.c, g.h, g.w) == (2, 3, 10, 12)
        assert (g.k, g.r, g.s) == (5, 3, 3)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConvGeometry.from_tensors(
                np.zeros((1, 3, 8, 8)), np.zeros((2, 4, 3, 3))
            )

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            ConvGeometry(n=1, c=1, h=2, w=2, k=1, r=3, s=3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ConvGeometry(n=0, c=1, h=4, w=4, k=1, r=1, s=1)
        with pytest.raises(ValueError):
            ConvGeometry(n=1, c=1, h=4, w=4, k=1, r=1, s=1, padding=-1)


class TestIm2col:
    def test_1x1_kernel_is_transpose_reshape(self, rng):
        x = rng.integers(-10, 10, size=(1, 3, 4, 4))
        g = ConvGeometry.from_tensors(x, np.zeros((2, 3, 1, 1)))
        patches = im2col(x, g)
        assert patches.shape == (16, 3)
        # Row (p*4+q) must equal the channel vector at (p, q).
        for p in range(4):
            for q in range(4):
                assert np.array_equal(patches[p * 4 + q], x[0, :, p, q])

    def test_column_order_is_c_r_s(self, rng):
        x = rng.integers(-10, 10, size=(1, 2, 3, 3))
        g = ConvGeometry.from_tensors(x, np.zeros((1, 2, 2, 2)))
        patches = im2col(x, g)
        # First row = window at (0,0); column index = (c*R + r)*S + s.
        window = x[0, :, 0:2, 0:2]
        assert np.array_equal(patches[0], window.reshape(-1))

    def test_shape_validation(self):
        g = ConvGeometry(n=1, c=1, h=4, w=4, k=1, r=2, s=2)
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 2, 4, 4)), g)

    def test_lowering_equals_direct_convolution(self, rng):
        x = rng.integers(-50, 50, size=(2, 3, 6, 7))
        w = rng.integers(-50, 50, size=(4, 3, 3, 2))
        g = ConvGeometry.from_tensors(x, w, stride=1, padding=1)
        gemm_out = reference_gemm(im2col(x, g), kernel_to_matrix(w, g))
        lowered = col2im_output(gemm_out, g)
        direct = reference_conv2d(x, w, padding=1)
        assert np.array_equal(lowered, direct)

    def test_lowering_with_stride(self, rng):
        x = rng.integers(-50, 50, size=(1, 2, 9, 9))
        w = rng.integers(-50, 50, size=(3, 2, 3, 3))
        g = ConvGeometry.from_tensors(x, w, stride=2)
        gemm_out = reference_gemm(im2col(x, g), kernel_to_matrix(w, g))
        assert np.array_equal(
            col2im_output(gemm_out, g), reference_conv2d(x, w, stride=2)
        )


class TestKernelToMatrix:
    def test_channel_is_column(self, rng):
        w = rng.integers(-10, 10, size=(5, 2, 3, 3))
        g = ConvGeometry(n=1, c=2, h=8, w=8, k=5, r=3, s=3)
        matrix = kernel_to_matrix(w, g)
        assert matrix.shape == (18, 5)
        # Column k is kernel k flattened in (C, R, S) order.
        for k in range(5):
            assert np.array_equal(matrix[:, k], w[k].reshape(-1))

    def test_shape_validation(self):
        g = ConvGeometry(n=1, c=2, h=8, w=8, k=5, r=3, s=3)
        with pytest.raises(ValueError):
            kernel_to_matrix(np.zeros((5, 3, 3, 3)), g)


class TestCol2im:
    def test_roundtrip_indexing(self, rng):
        g = ConvGeometry(n=2, c=1, h=5, w=5, k=3, r=2, s=2)
        matrix = rng.integers(-10, 10, size=(g.gemm_m, g.k))
        out = col2im_output(matrix, g)
        assert out.shape == (2, 3, 4, 4)
        # Row index (n*P + p)*Q + q and column k map to out[n, k, p, q].
        assert out[1, 2, 3, 0] == matrix[(1 * 4 + 3) * 4 + 0, 2]

    def test_shape_validation(self):
        g = ConvGeometry(n=1, c=1, h=4, w=4, k=2, r=2, s=2)
        with pytest.raises(ValueError):
            col2im_output(np.zeros((5, 2)), g)
