"""Property tests for the convolution channel mapping under faults.

The RQ2 mechanism as universally-quantified statements: output channel k
is GEMM column k (Section II-B), so a WS fault in mesh column c corrupts
exactly the channels {c, c + cols, c + 2*cols, ...} that exist — fully,
at every spatial position, for anti-masking operands.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fault_patterns import extract_pattern
from repro.faults import FaultInjector, FaultSite
from repro.ops.conv import SystolicConv2d
from repro.ops.im2col import ConvGeometry
from repro.ops.reference import reference_conv2d
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig(4, 4)

channels = st.integers(min_value=1, max_value=3)
out_channels = st.integers(min_value=1, max_value=9)
spatial = st.integers(min_value=3, max_value=8)
kernel = st.integers(min_value=1, max_value=3)
coords = st.integers(min_value=0, max_value=3)
seeds = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=60, deadline=None)
@given(c=channels, k=out_channels, hw=spatial, rs=kernel,
       row=coords, col=coords)
def test_ws_fault_corrupts_exactly_the_mapped_channels(c, k, hw, rs, row, col):
    x = np.ones((1, c, hw, hw), dtype=np.int64)
    w = np.ones((k, c, rs, rs), dtype=np.int64)
    golden = reference_conv2d(x, w)
    injector = FaultInjector.single_stuck_at(FaultSite(row, col, "sum", 20), 1)
    conv = SystolicConv2d(
        FunctionalSimulator(MESH, injector), Dataflow.WEIGHT_STATIONARY
    )
    result = conv(x, w)
    pattern = extract_pattern(
        golden, result.output, plan=result.plan, geometry=result.geometry
    )
    # Channels mapped to mesh column `col` across column tiles:
    expected = tuple(result.plan.output_cols_for_mesh_col(col))
    assert pattern.corrupted_channels() == expected
    # And each corrupted channel is corrupted at EVERY spatial position
    # (the paper's "entire output channel").
    for channel in expected:
        assert pattern.channel_mask(channel).all()


@settings(max_examples=40, deadline=None)
@given(c=channels, k=out_channels, hw=spatial, rs=kernel,
       seed=seeds, row=coords, col=coords, stride=st.integers(1, 2),
       padding=st.integers(0, 1))
def test_conv_pattern_equals_lowered_gemm_pattern(
    c, k, hw, rs, seed, row, col, stride, padding
):
    """Faulty conv output diffs, viewed in GEMM space, equal the faulty
    lowered-GEMM diffs — the conv path adds no fault behaviour of its own."""
    if rs > hw:
        rs = hw
    rng = np.random.default_rng(seed)
    x = rng.integers(-30, 30, size=(1, c, hw, hw))
    w = rng.integers(-30, 30, size=(k, c, rs, rs))
    injector = FaultInjector.single_stuck_at(FaultSite(row, col, "sum", 18), 1)

    conv = SystolicConv2d(
        FunctionalSimulator(MESH, injector),
        Dataflow.WEIGHT_STATIONARY,
        stride=stride,
        padding=padding,
    )
    result = conv(x, w)
    golden = reference_conv2d(x, w, stride=stride, padding=padding)
    conv_pattern = extract_pattern(
        golden, result.output, plan=result.plan, geometry=result.geometry
    )

    from repro.ops.gemm import TiledGemm
    from repro.ops.im2col import im2col, kernel_to_matrix
    from repro.ops.reference import reference_gemm

    g = result.geometry
    patches = im2col(x, g)
    weights = kernel_to_matrix(w, g)
    gemm_result = TiledGemm(FunctionalSimulator(MESH, injector))(
        patches, weights, Dataflow.WEIGHT_STATIONARY
    )
    gemm_pattern = extract_pattern(
        reference_gemm(patches, weights), gemm_result.output,
        plan=gemm_result.plan,
    )
    assert np.array_equal(conv_pattern.gemm_mask(), gemm_pattern.mask)


@settings(max_examples=40, deadline=None)
@given(c=channels, k=out_channels, hw=spatial, rs=kernel, col=coords)
def test_channel_count_rule(c, k, hw, rs, col):
    """Single- vs multi-channel is decided by channel-dimension tiling:
    multi iff more than one column tile maps mesh column `col`."""
    if rs > hw:
        rs = hw
    g = ConvGeometry(n=1, c=c, h=hw, w=hw, k=k, r=rs, s=rs)
    from repro.core.classifier import PatternClass
    from repro.core.predictor import predict_pattern
    from repro.ops.tiling import plan_gemm_tiling

    plan = plan_gemm_tiling(
        g.gemm_m, g.gemm_k, g.gemm_n, MESH, Dataflow.WEIGHT_STATIONARY
    )
    predicted = predict_pattern(FaultSite(0, col), plan, geometry=g)
    mapped = plan.output_cols_for_mesh_col(col)
    if not mapped:
        assert predicted.pattern_class is PatternClass.MASKED
    elif len(mapped) == 1:
        assert predicted.pattern_class is PatternClass.SINGLE_CHANNEL
    else:
        assert predicted.pattern_class is PatternClass.MULTI_CHANNEL
    assert predicted.channels == mapped
