"""Property-based tests for the pattern pipeline (predict/classify/extract).

These encode the paper's determinism and position-independence claims as
universally-quantified properties over fault sites and workload shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import Campaign, FaultSpec, GemmWorkload
from repro.core.classifier import PatternClass, classify_pattern
from repro.core.fault_patterns import extract_pattern
from repro.core.predictor import predict_pattern
from repro.faults import FaultInjector, FaultSite
from repro.ops.gemm import TiledGemm
from repro.ops.reference import reference_gemm
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig(4, 4)

dims = st.integers(min_value=1, max_value=12)
coords = st.integers(min_value=0, max_value=3)
dataflows = st.sampled_from(list(Dataflow))
seeds = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=80, deadline=None)
@given(m=dims, k=dims, n=dims, row=coords, col=coords, dataflow=dataflows)
def test_predicted_support_contains_observed_corruption(
    m, k, n, row, col, dataflow
):
    """Support is an over-approximation for *any* operands and bit."""
    rng = np.random.default_rng(m * 1000 + k * 100 + n * 10 + row + col)
    a = rng.integers(-128, 128, size=(m, k))
    b = rng.integers(-128, 128, size=(k, n))
    site = FaultSite(row, col, "sum", int(rng.integers(0, 32)))
    injector = FaultInjector.single_stuck_at(site, int(rng.integers(0, 2)))
    golden = reference_gemm(a, b)
    faulty = TiledGemm(FunctionalSimulator(MESH, injector))(a, b, dataflow)
    plan = faulty.plan
    observed = extract_pattern(golden, faulty.output, plan=plan)
    predicted = predict_pattern(site, plan)
    # Every corrupted cell lies inside the predicted support.
    assert np.all(predicted.support | ~observed.mask)


@settings(max_examples=60, deadline=None)
@given(m=dims, k=dims, n=dims, row=coords, col=coords, dataflow=dataflows)
def test_ones_workload_prediction_is_exact(m, k, n, row, col, dataflow):
    """With the paper's all-ones operands and a high disagreeing bit,
    the predicted support equals the observed corruption exactly."""
    a = np.ones((m, k), dtype=np.int64)
    b = np.ones((k, n), dtype=np.int64)
    site = FaultSite(row, col, "sum", 20)
    injector = FaultInjector.single_stuck_at(site, 1)
    golden = reference_gemm(a, b)
    result = TiledGemm(FunctionalSimulator(MESH, injector))(a, b, dataflow)
    observed = extract_pattern(golden, result.output, plan=result.plan)
    predicted = predict_pattern(site, result.plan)
    assert np.array_equal(predicted.support, observed.mask)
    assert (
        classify_pattern(observed).pattern_class is predicted.pattern_class
    )


@settings(max_examples=30, deadline=None)
@given(
    size=st.sampled_from([1, 2, 3, 4, 8, 12]),  # fits the mesh or divides it
    dataflow=dataflows,
)
def test_campaign_is_single_class(size, dataflow):
    """Paper Section IV: every configuration yields exactly one class.

    Holds whenever the operand either fits the mesh or divides evenly into
    mesh-sized tiles — which covers every configuration in the paper's
    Table I (16 and 112 are both multiples of 16). See the companion test
    below for the ragged-tiling refinement this reproduction uncovered.
    """
    result = Campaign(MESH, GemmWorkload.square(size, dataflow)).run()
    assert result.is_single_class()


@settings(max_examples=20, deadline=None)
@given(size=st.sampled_from([5, 6, 7, 9, 10, 11]))
def test_ragged_tiling_mixes_tile_multiplicity(size):
    """Refinement of the paper's single-class claim (not tested there):
    when the operand does NOT divide evenly into mesh tiles, faults near
    the mesh's high rows/columns fall outside the ragged edge tiles and
    corrupt fewer tiles — so SINGLE_ELEMENT and SINGLE_ELEMENT_MULTI_TILE
    legitimately coexist in one OS campaign. The per-site prediction is
    still exact (see test_ones_workload_prediction_is_exact); only the
    campaign-level 'one class per configuration' summary weakens."""
    result = Campaign(
        MESH, GemmWorkload.square(size, Dataflow.OUTPUT_STATIONARY)
    ).run()
    classes = {
        e.pattern_class
        for e in result.experiments
        if e.pattern_class is not PatternClass.MASKED
    }
    assert classes <= {
        PatternClass.SINGLE_ELEMENT,
        PatternClass.SINGLE_ELEMENT_MULTI_TILE,
    }
    # The corner fault (last mesh row/col) always lands in fewer tiles
    # than the (0, 0) fault when the size is ragged.
    corner = result.result_at(3, 3)
    origin = result.result_at(0, 0)
    assert corner.num_corrupted <= origin.num_corrupted


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=4, max_value=12),
    row_a=coords,
    col_a=coords,
    row_b=coords,
)
def test_ws_class_is_position_independent(size, row_a, col_a, row_b):
    """Moving a WS fault to any row of the same column changes nothing."""
    workload = GemmWorkload.square(size, Dataflow.WEIGHT_STATIONARY)
    campaign = Campaign(MESH, workload, sites=[(row_a, col_a), (row_b, col_a)])
    result = campaign.run()
    first, second = result.experiments
    assert first.pattern_class is second.pattern_class
    assert np.array_equal(first.pattern.mask, second.pattern.mask)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=12),
    dataflow=dataflows,
    bit=st.integers(min_value=0, max_value=31),
    stuck_value=st.sampled_from([0, 1]),
)
def test_classification_never_other_for_ssf(size, dataflow, bit, stuck_value):
    """Paper: SSF patterns are always well-defined (never OTHER)."""
    workload = GemmWorkload.square(size, dataflow)
    spec = FaultSpec(bit=bit, stuck_value=stuck_value)
    result = Campaign(MESH, workload, fault_spec=spec).run()
    for experiment in result.experiments:
        assert experiment.pattern_class is not PatternClass.OTHER
