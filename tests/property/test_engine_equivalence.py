"""Property: the functional engine is bit-exact with the cycle engine.

This equivalence is what licenses running the paper's large (112x112)
campaigns on the vectorised engine: for every operand, dataflow, fault
signal, bit, polarity, and fault location, the two engines must produce the
identical output — including transient-fault timing and multi-fault sets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultInjector,
    FaultSet,
    FaultSite,
    StuckAtFault,
    TransientBitFlip,
)
from repro.faults.sites import MAC_SIGNALS, signal_dtype
from repro.systolic import CycleSimulator, Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig(rows=5, cols=5)

dims = st.integers(min_value=1, max_value=5)
long_dim = st.integers(min_value=1, max_value=9)
elements = st.integers(min_value=-128, max_value=127)
dataflows = st.sampled_from(list(Dataflow))
signals = st.sampled_from(MAC_SIGNALS)
coords = st.integers(min_value=0, max_value=4)
stuck = st.sampled_from([0, 1])


def matrix(rows: int, cols: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(-128, 128, size=(rows, cols))


@st.composite
def fault_strategy(draw):
    signal = draw(signals)
    bit = draw(st.integers(min_value=0, max_value=signal_dtype(signal).width - 1))
    site = FaultSite(row=draw(coords), col=draw(coords), signal=signal, bit=bit)
    kind = draw(st.sampled_from(["stuck", "transient", "window"]))
    if kind == "stuck":
        return StuckAtFault(site=site, stuck_value=draw(stuck))
    start = draw(st.integers(min_value=0, max_value=15))
    if kind == "transient":
        return TransientBitFlip(site=site, start_cycle=start)
    return TransientBitFlip(
        site=site,
        start_cycle=start,
        end_cycle=start + draw(st.integers(min_value=0, max_value=10)),
    )


@settings(max_examples=120, deadline=None)
@given(
    m=dims,
    k=long_dim,
    n=dims,
    seed=st.integers(min_value=0, max_value=2**31),
    dataflow=dataflows,
    fault=fault_strategy(),
)
def test_single_fault_equivalence(m, k, n, seed, dataflow, fault):
    a = matrix(m, k, seed)
    b = matrix(k, n, seed + 1)
    if dataflow is not Dataflow.OUTPUT_STATIONARY and k > MESH.rows:
        k = MESH.rows
        a, b = a[:, :k], b[:k, :]
    injector = FaultInjector(FaultSet.of(fault))
    cycle = CycleSimulator(MESH, injector).matmul(a, b, dataflow)
    fast = FunctionalSimulator(MESH, injector).matmul(a, b, dataflow)
    assert np.array_equal(cycle, fast)


@settings(max_examples=40, deadline=None)
@given(
    m=dims,
    k=dims,
    n=dims,
    seed=st.integers(min_value=0, max_value=2**31),
    dataflow=dataflows,
    faults=st.lists(fault_strategy(), min_size=2, max_size=4),
)
def test_multi_fault_equivalence(m, k, n, seed, dataflow, faults):
    a = matrix(m, k, seed)
    b = matrix(k, n, seed + 1)
    injector = FaultInjector(FaultSet.from_iterable(faults))
    cycle = CycleSimulator(MESH, injector).matmul(a, b, dataflow)
    fast = FunctionalSimulator(MESH, injector).matmul(a, b, dataflow)
    assert np.array_equal(cycle, fast)


@settings(max_examples=60, deadline=None)
@given(
    m=dims,
    k=long_dim,
    n=dims,
    seed=st.integers(min_value=0, max_value=2**31),
    dataflow=dataflows,
)
def test_golden_equivalence_and_correctness(m, k, n, seed, dataflow):
    a = matrix(m, k, seed)
    b = matrix(k, n, seed + 1)
    if dataflow is not Dataflow.OUTPUT_STATIONARY and k > MESH.rows:
        k = MESH.rows
        a, b = a[:, :k], b[:k, :]
    cycle = CycleSimulator(MESH).matmul(a, b, dataflow)
    fast = FunctionalSimulator(MESH).matmul(a, b, dataflow)
    reference = a.astype(np.int64) @ b.astype(np.int64)
    assert np.array_equal(cycle, reference)
    assert np.array_equal(fast, reference)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    dataflow=dataflows,
    fault=fault_strategy(),
    bias_scale=st.integers(min_value=0, max_value=2**20),
)
def test_bias_path_equivalence(seed, dataflow, fault, bias_scale):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, size=(4, 4))
    b = rng.integers(-128, 128, size=(4, 4))
    bias = rng.integers(-bias_scale - 1, bias_scale + 1, size=(4, 4))
    injector = FaultInjector(FaultSet.of(fault))
    cycle = CycleSimulator(MESH, injector).matmul(a, b, dataflow, bias=bias)
    fast = FunctionalSimulator(MESH, injector).matmul(a, b, dataflow, bias=bias)
    assert np.array_equal(cycle, fast)
