"""Property-based tests for tiling, lowering, and executor invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops.gemm import TiledGemm
from repro.ops.im2col import ConvGeometry, col2im_output, im2col, kernel_to_matrix
from repro.ops.reference import reference_conv2d, reference_gemm
from repro.ops.tiling import plan_gemm_tiling, split_ranges
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig(4, 4)

dims = st.integers(min_value=1, max_value=14)
seeds = st.integers(min_value=0, max_value=2**31)
dataflows = st.sampled_from(list(Dataflow))


class TestSplitRangesProperties:
    @given(
        extent=st.integers(min_value=1, max_value=500),
        tile=st.integers(min_value=1, max_value=64),
    )
    def test_partition(self, extent, tile):
        ranges = split_ranges(extent, tile)
        # Contiguous, disjoint, covering [0, extent).
        assert ranges[0].start == 0
        assert ranges[-1].stop == extent
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev.stop == cur.start
        assert all(0 < r.size <= tile for r in ranges)
        assert sum(r.size for r in ranges) == extent


class TestTiledGemmProperties:
    @settings(max_examples=60, deadline=None)
    @given(m=dims, k=dims, n=dims, seed=seeds, dataflow=dataflows)
    def test_tiled_equals_reference(self, m, k, n, seed, dataflow):
        rng = np.random.default_rng(seed)
        a = rng.integers(-128, 128, size=(m, k))
        b = rng.integers(-128, 128, size=(k, n))
        result = TiledGemm(FunctionalSimulator(MESH))(a, b, dataflow)
        assert np.array_equal(result.output, reference_gemm(a, b))

    @settings(max_examples=30, deadline=None)
    @given(m=dims, k=dims, n=dims, seed=seeds, dataflow=dataflows)
    def test_reduction_modes_agree_golden(self, m, k, n, seed, dataflow):
        rng = np.random.default_rng(seed)
        a = rng.integers(-128, 128, size=(m, k))
        b = rng.integers(-128, 128, size=(k, n))
        mesh_mode = TiledGemm(FunctionalSimulator(MESH), reduction="mesh")
        memory_mode = TiledGemm(FunctionalSimulator(MESH), reduction="memory")
        assert np.array_equal(
            mesh_mode(a, b, dataflow).output, memory_mode(a, b, dataflow).output
        )

    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims, dataflow=dataflows)
    def test_plan_geometry_invariants(self, m, k, n, dataflow):
        plan = plan_gemm_tiling(m, k, n, MESH, dataflow)
        assert plan.num_output_tiles == len(plan.m_tiles) * len(plan.n_tiles)
        assert plan.num_tile_matmuls == plan.num_output_tiles * len(plan.k_tiles)
        # Every output cell belongs to exactly one tile.
        covered = np.zeros((m, n), dtype=int)
        for m_range, n_range in plan.output_tiles():
            covered[m_range.start : m_range.stop, n_range.start : n_range.stop] += 1
        assert np.all(covered == 1)


class TestConvLoweringProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=2),
        c=st.integers(min_value=1, max_value=3),
        hw=st.integers(min_value=3, max_value=8),
        k=st.integers(min_value=1, max_value=4),
        rs=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=1),
        seed=seeds,
    )
    def test_im2col_gemm_equals_direct_conv(
        self, n, c, hw, k, rs, stride, padding, seed
    ):
        rng = np.random.default_rng(seed)
        x = rng.integers(-30, 30, size=(n, c, hw, hw))
        w = rng.integers(-30, 30, size=(k, c, rs, rs))
        geometry = ConvGeometry.from_tensors(x, w, stride=stride, padding=padding)
        lowered = col2im_output(
            reference_gemm(im2col(x, geometry), kernel_to_matrix(w, geometry)),
            geometry,
        )
        direct = reference_conv2d(x, w, stride=stride, padding=padding)
        assert np.array_equal(lowered, direct)

    @settings(max_examples=30, deadline=None)
    @given(
        c=st.integers(min_value=1, max_value=3),
        hw=st.integers(min_value=3, max_value=8),
        k=st.integers(min_value=1, max_value=4),
        rs=st.integers(min_value=1, max_value=3),
    )
    def test_geometry_dimensions_consistent(self, c, hw, k, rs):
        g = ConvGeometry(n=1, c=c, h=hw, w=hw, k=k, r=rs, s=rs)
        assert g.gemm_m == g.n * g.p * g.q
        assert g.gemm_k == c * rs * rs
        assert g.gemm_n == k
        assert g.p == hw - rs + 1
