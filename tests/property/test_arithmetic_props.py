"""Property-based tests for the fixed-width arithmetic substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic.datatypes import (
    INT8,
    INT32,
    flip_bit_array,
    force_bit_array,
    wrap_array,
)

ints = st.integers(min_value=-(2**40), max_value=2**40)
int8_bits = st.integers(min_value=0, max_value=7)
int32_bits = st.integers(min_value=0, max_value=31)
stuck = st.sampled_from([0, 1])


class TestWrapProperties:
    @given(ints)
    def test_wrap_is_idempotent(self, value):
        assert INT32.wrap(INT32.wrap(value)) == INT32.wrap(value)

    @given(ints)
    def test_wrap_lands_in_range(self, value):
        wrapped = INT8.wrap(value)
        assert INT8.min_value <= wrapped <= INT8.max_value

    @given(ints)
    def test_wrap_preserves_residue(self, value):
        assert INT32.wrap(value) % 2**32 == value % 2**32

    @given(ints, ints)
    def test_wrapped_addition_is_homomorphic(self, a, b):
        # wrap(a + b) == wrap(wrap(a) + wrap(b)): stepwise and end-of-chain
        # wrapping agree, the fact the functional engine relies on.
        assert INT32.wrap(a + b) == INT32.wrap(INT32.wrap(a) + INT32.wrap(b))

    @given(ints, ints, ints)
    def test_wrapped_addition_associative(self, a, b, c):
        left = INT32.wrap(INT32.wrap(a + b) + c)
        right = INT32.wrap(a + INT32.wrap(b + c))
        assert left == right


class TestBitForceProperties:
    @given(ints, int32_bits, stuck)
    def test_force_is_idempotent(self, value, bit, stuck_value):
        once = INT32.force_bit(value, bit, stuck_value)
        assert INT32.force_bit(once, bit, stuck_value) == once

    @given(ints, int32_bits, stuck)
    def test_forced_bit_reads_back(self, value, bit, stuck_value):
        forced = INT32.force_bit(value, bit, stuck_value)
        assert INT32.get_bit(forced, bit) == stuck_value

    @given(ints, int32_bits, stuck)
    def test_force_changes_only_target_bit(self, value, bit, stuck_value):
        forced = INT32.force_bit(value, bit, stuck_value)
        delta = INT32.to_unsigned(forced) ^ INT32.to_unsigned(INT32.wrap(value))
        assert delta in (0, 1 << bit)

    @given(ints, int32_bits)
    def test_flip_is_involution(self, value, bit):
        wrapped = INT32.wrap(value)
        assert INT32.flip_bit(INT32.flip_bit(wrapped, bit), bit) == wrapped

    @given(ints, int32_bits)
    def test_flip_deviation_is_power_of_two(self, value, bit):
        flipped = INT32.flip_bit(value, bit)
        deviation = INT32.to_unsigned(flipped) ^ INT32.to_unsigned(INT32.wrap(value))
        assert deviation == 1 << bit


class TestVectorisedAgreement:
    @given(st.lists(ints, min_size=1, max_size=50))
    def test_wrap_array_matches_scalar(self, values):
        array = np.array(values, dtype=np.int64)
        wrapped = wrap_array(array, INT8)
        assert wrapped.tolist() == [INT8.wrap(v) for v in values]

    @given(st.lists(ints, min_size=1, max_size=50), int32_bits, stuck)
    def test_force_array_matches_scalar(self, values, bit, stuck_value):
        array = np.array(values, dtype=np.int64)
        forced = force_bit_array(array, bit, stuck_value, INT32)
        assert forced.tolist() == [
            INT32.force_bit(v, bit, stuck_value) for v in values
        ]

    @given(st.lists(ints, min_size=1, max_size=50), int8_bits)
    def test_flip_array_matches_scalar(self, values, bit):
        array = np.array(values, dtype=np.int64)
        flipped = flip_bit_array(array, bit, INT8)
        assert flipped.tolist() == [INT8.flip_bit(v, bit) for v in values]
