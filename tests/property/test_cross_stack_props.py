"""Property tests across stack layers: accelerator, appfi, diagnosis.

These properties tie the independently-implemented layers together:

* the Gemmini-like accelerator must agree with the bare engine's
  memory-reduction mode for any operands, dataflow, and fault;
* the application-level injector's corruption support must equal the
  RTL-equivalent simulator's corruption for anti-masking workloads;
* diagnosis must never exonerate the true fault site.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appfi import AppLevelInjector
from repro.core.diagnosis import diagnose
from repro.core.fault_patterns import extract_pattern
from repro.faults import FaultInjector, FaultSite
from repro.gemmini import GemminiAccelerator
from repro.mitigation import OffliningGemm, TemporalRedundantGemm
from repro.ops import TiledGemm, reference_gemm
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig(4, 4)

dims = st.integers(min_value=1, max_value=10)
coords = st.integers(min_value=0, max_value=3)
bits = st.integers(min_value=0, max_value=31)
stuck = st.sampled_from([0, 1])
dataflows = st.sampled_from(list(Dataflow))
seeds = st.integers(min_value=0, max_value=2**31)


def operands(m, k, n, seed):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(-128, 128, size=(m, k)),
        rng.integers(-128, 128, size=(k, n)),
    )


@settings(max_examples=50, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds, dataflow=dataflows,
       row=coords, col=coords, bit=bits, stuck_value=stuck)
def test_accelerator_equals_memory_reduction_engine(
    m, k, n, seed, dataflow, row, col, bit, stuck_value
):
    a, b = operands(m, k, n, seed)
    injector = FaultInjector.single_stuck_at(
        FaultSite(row, col, "sum", bit), stuck_value
    )
    accel = GemminiAccelerator(MESH, injector=injector)
    engine = TiledGemm(FunctionalSimulator(MESH, injector), reduction="memory")
    assert np.array_equal(
        accel.matmul(a, b, dataflow=dataflow),
        engine(a, b, dataflow).output,
    )


@settings(max_examples=60, deadline=None)
@given(m=dims, k=dims, n=dims, row=coords, col=coords,
       dataflow=st.sampled_from(
           [Dataflow.WEIGHT_STATIONARY, Dataflow.OUTPUT_STATIONARY]
       ))
def test_appfi_support_equals_rtl_corruption_on_ones(
    m, k, n, row, col, dataflow
):
    ones_a = np.ones((m, k), dtype=np.int64)
    ones_b = np.ones((k, n), dtype=np.int64)
    golden = reference_gemm(ones_a, ones_b)
    site = FaultSite(row, col, "sum", 20)

    rtl = TiledGemm(
        FunctionalSimulator(MESH, FaultInjector.single_stuck_at(site, 1))
    )(ones_a, ones_b, dataflow)
    rtl_mask = golden != rtl.output

    app = AppLevelInjector(MESH, dataflow, bit=20, mode="stuck1")
    app_mask = golden != app.inject_gemm(golden, k=k, site=site)
    assert np.array_equal(rtl_mask, app_mask)


@settings(max_examples=60, deadline=None)
@given(m=dims, k=dims, n=dims, row=coords, col=coords, dataflow=dataflows)
def test_diagnosis_never_exonerates_true_site(m, k, n, row, col, dataflow):
    if dataflow is not Dataflow.OUTPUT_STATIONARY:
        k = min(k, 4)
    ones_a = np.ones((m, k), dtype=np.int64)
    ones_b = np.ones((k, n), dtype=np.int64)
    golden = reference_gemm(ones_a, ones_b)
    site = FaultSite(row, col, "sum", 20)
    result = TiledGemm(
        FunctionalSimulator(MESH, FaultInjector.single_stuck_at(site, 1))
    )(ones_a, ones_b, dataflow)
    pattern = extract_pattern(golden, result.output, plan=result.plan)
    diagnosis = diagnose(pattern, MESH)
    if pattern.corrupted:
        assert diagnosis.contains(row, col)


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds, row=coords, col=coords,
       dataflow=dataflows)
def test_offlining_always_restores_golden(m, k, n, seed, row, col, dataflow):
    if dataflow is not Dataflow.OUTPUT_STATIONARY:
        k = min(k, 4)
    a, b = operands(m, k, n, seed)
    injector = FaultInjector.single_stuck_at(FaultSite(row, col, "sum", 22), 1)
    off = OffliningGemm(
        FunctionalSimulator(MESH, injector), dataflow, [(row, col)]
    )
    assert np.array_equal(off(a, b).output, reference_gemm(a, b))


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds, row=coords, col=coords,
       dataflow=dataflows)
def test_redundancy_restores_golden(m, k, n, seed, row, col, dataflow):
    # The block rotation pads to whole mesh tiles internally, so any shape
    # is votable — including the tiled widths that defeated a naive global
    # rotation (the unsoundness this property suite originally caught).
    if dataflow is not Dataflow.OUTPUT_STATIONARY:
        k = min(k, 4)
    a, b = operands(m, k, n, seed)
    injector = FaultInjector.single_stuck_at(FaultSite(row, col, "sum", 22), 1)
    redundant = TemporalRedundantGemm(
        FunctionalSimulator(MESH, injector), dataflow, runs=3
    )
    report = redundant(a, b)
    assert report.fully_corrected
    assert np.array_equal(report.output, reference_gemm(a, b))
