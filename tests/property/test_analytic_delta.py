"""Properties of the analytic delta algebra.

The cross-engine grid in ``tests/engines`` pins bit-identity on chosen
configurations; these properties let hypothesis roam the configuration
space — random shapes, seeds, sites, bits, polarities — and assert the
algebra's defining equations directly:

* the analytic delta equals ``functional_faulty - golden`` *exactly*
  (not approximately — the algebra is modular arithmetic, not an
  estimate);
* a fault on a MAC the workload never streams through produces a zero
  delta (architectural masking);
* every corrupted cell lies inside the dataflow's per-tile footprint
  (:func:`~repro.systolic.dataflow.site_tile_footprint`), which is the
  paper's pattern-class geometry.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import Campaign, FaultSpec, FillKind, GemmWorkload
from repro.core.classifier import PatternClass
from repro.faults.sites import MAC_SIGNALS, signal_dtype
from repro.systolic import Dataflow, MeshConfig
from repro.systolic.dataflow import site_tile_footprint

from tests.core._support import assert_experiments_equal

MESH = MeshConfig(rows=5, cols=5)

dims = st.integers(min_value=1, max_value=5)
long_dim = st.integers(min_value=1, max_value=9)
coords = st.integers(min_value=0, max_value=4)
seeds = st.integers(min_value=0, max_value=2**31)
dataflows = st.sampled_from(
    [
        Dataflow.OUTPUT_STATIONARY,
        Dataflow.WEIGHT_STATIONARY,
        Dataflow.INPUT_STATIONARY,
    ]
)


@st.composite
def fault_specs(draw):
    signal = draw(st.sampled_from(MAC_SIGNALS))
    bit = draw(
        st.integers(min_value=0, max_value=signal_dtype(signal).width - 1)
    )
    return FaultSpec(
        signal=signal, bit=bit, stuck_value=draw(st.sampled_from([0, 1]))
    )


def _campaign(m, k, n, dataflow, seed, spec, site):
    workload = GemmWorkload(
        m=m, k=k, n=n, dataflow=dataflow, fill=FillKind.RANDOM, seed=seed
    )
    return Campaign(
        MESH, workload, fault_spec=spec, engine="analytic", sites=[site]
    )


@settings(max_examples=80, deadline=None)
@given(
    m=dims,
    k=long_dim,
    n=dims,
    seed=seeds,
    dataflow=dataflows,
    spec=fault_specs(),
    row=coords,
    col=coords,
)
def test_delta_equals_functional_minus_golden(
    m, k, n, seed, dataflow, spec, row, col
):
    campaign = _campaign(m, k, n, dataflow, seed, spec, (row, col))
    golden, plan, geometry = campaign.golden_run()
    reference = campaign.run_experiment(row, col, golden, plan, geometry)
    batched = campaign.run_batch([(row, col)], golden, plan, geometry)
    assert len(batched) == 1
    assert_experiments_equal(reference, batched[0])
    # The defining identity, spelled out: golden + delta is the faulty
    # output the functional engine computes, element for element.
    faulty, _, _ = campaign.run_single(spec.fault_at(row, col))
    assert np.array_equal(
        batched[0].pattern.deviation,
        faulty.astype(np.int64) - golden.astype(np.int64),
    )


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=4),
    seed=seeds,
    spec=fault_specs(),
    row=coords,
    col=coords,
)
def test_unstreamed_site_is_masked(m, k, n, seed, spec, row, col):
    """A MAC outside the workload's occupied mesh region deviates nothing.

    For an untiled OS GEMM the occupied region is ``m x n``; under WS it
    is every row of the first ``n`` columns (the partial-sum chain runs
    the full column). Sites beyond it must be MASKED with a zero delta.
    """
    os_campaign = _campaign(
        m, k, n, Dataflow.OUTPUT_STATIONARY, seed, spec, (row, col)
    )
    ws_campaign = _campaign(
        m, k, n, Dataflow.WEIGHT_STATIONARY, seed, spec, (row, col)
    )
    for campaign, masked in (
        (os_campaign, row >= m or col >= n),
        (ws_campaign, col >= n),
    ):
        if not masked:
            continue
        result = campaign.run().experiments[0]
        assert result.pattern_class is PatternClass.MASKED
        assert result.num_corrupted == 0
        assert not result.pattern.mask.any()


@settings(max_examples=60, deadline=None)
@given(
    m=dims,
    k=long_dim,
    n=dims,
    seed=seeds,
    dataflow=dataflows,
    spec=fault_specs(),
    row=coords,
    col=coords,
)
def test_corruption_stays_inside_the_tile_footprint(
    m, k, n, seed, dataflow, spec, row, col
):
    campaign = _campaign(m, k, n, dataflow, seed, spec, (row, col))
    result = campaign.run()
    experiment = result.experiments[0]
    mask = experiment.pattern.gemm_mask()
    footprint: set[tuple[int, int]] = set()
    for m_range, n_range in result.plan.output_tiles():
        for local_row, local_col in site_tile_footprint(
            dataflow, row, col, m_range.size, n_range.size
        ):
            footprint.add(
                (m_range.start + local_row, n_range.start + local_col)
            )
    corrupted = {
        (int(r), int(c)) for r, c in zip(*np.nonzero(mask))
    }
    assert corrupted <= footprint


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    seed=seeds,
    col=coords,
    row_a=coords,
    row_b=coords,
)
def test_ws_row_position_independence(n, seed, col, row_a, row_b):
    """Under WS the fault *row* never changes the pattern class.

    The partial-sum chain of a column traverses every mesh row, so two
    stuck-at faults in the same column — any rows — corrupt the same
    output column (the paper's position-independence observation). With
    all-ones operands and the paper's high stuck-at-1 bit, neither is
    maskable, so both classify identically.
    """
    workload = GemmWorkload(
        m=4, k=4, n=n, dataflow=Dataflow.WEIGHT_STATIONARY, seed=seed
    )
    campaign = Campaign(
        MESH,
        workload,
        engine="analytic",
        sites=[(row_a, col), (row_b, col)],
    )
    first, second = campaign.run().experiments
    assert first.pattern_class is second.pattern_class
    assert np.array_equal(first.pattern.mask, second.pattern.mask)
