"""Integration tests: the paper's published claims at paper scale.

These run the actual Table I configurations (16x16 mesh, exhaustive
256-experiment campaigns) on the fast engine and assert the qualitative
results of Section IV. They are the library-level counterparts of the
benchmark harness (which additionally prints the Fig. 3 artefacts).
"""

import numpy as np
import pytest

from repro.core import (
    Campaign,
    ConvWorkload,
    GemmWorkload,
    PatternClass,
    corner_sites,
    diagonal_sites,
    predict_pattern,
)
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig.paper()

OS = Dataflow.OUTPUT_STATIONARY
WS = Dataflow.WEIGHT_STATIONARY

# Exhaustive 256-site sweeps on the 112x112 workloads belong to the
# benchmark harness; the integration tests witness the same claims with
# the diagonal + corner sample (21 sites), which covers every mesh row and
# column index at a fraction of the runtime.
SAMPLED = sorted(set(diagonal_sites(MESH)) | set(corner_sites(MESH)))


@pytest.fixture(scope="module")
def rq1_results():
    return {
        dataflow: Campaign(MESH, GemmWorkload.square(16, dataflow)).run()
        for dataflow in Dataflow
    }


class TestRQ1Dataflows:
    def test_os_single_element(self, rq1_results):
        result = rq1_results[OS]
        assert result.dominant_class() is PatternClass.SINGLE_ELEMENT
        assert result.is_single_class()
        assert len(result.experiments) == 256

    def test_ws_single_column(self, rq1_results):
        result = rq1_results[WS]
        assert result.dominant_class() is PatternClass.SINGLE_COLUMN
        assert result.is_single_class()

    def test_os_more_fault_tolerant(self, rq1_results):
        """RQ1 and Burel et al.: OS corrupts 1 cell, WS a 16-cell column."""
        assert rq1_results[OS].mean_corrupted_cells() == 1.0
        assert rq1_results[WS].mean_corrupted_cells() == 16.0


class TestRQ2Operations:
    def test_gemm_column_vs_conv_channel(self):
        gemm = Campaign(MESH, GemmWorkload.square(16, WS)).run()
        conv = Campaign(MESH, ConvWorkload.paper_kernel(16, (3, 3, 3, 3))).run()
        assert gemm.dominant_class() is PatternClass.SINGLE_COLUMN
        assert conv.dominant_class() is PatternClass.SINGLE_CHANNEL

    def test_conv_corrupts_entire_channel(self):
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(16, (3, 3, 3, 3)), sites=[(2, 1)]
        ).run()
        pattern = result.experiments[0].pattern
        channels = pattern.corrupted_channels()
        assert channels == (1,)
        # Every spatial position of the channel is corrupted (paper IV-A2).
        assert pattern.channel_mask(1).all()

    def test_conv_channel_equals_gemm_column(self):
        """Section II-B: channel k of the conv output is GEMM column k."""
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(16, (3, 3, 3, 8)), sites=[(0, 5)]
        ).run()
        pattern = result.experiments[0].pattern
        gemm_mask = pattern.gemm_mask()
        assert gemm_mask[:, 5].all()
        assert pattern.corrupted_channels() == (5,)


class TestRQ3Tiling:
    def test_gemm_112_ws_multi_tile(self):
        result = Campaign(
            MESH, GemmWorkload.square(112, WS), sites=SAMPLED
        ).run()
        assert result.dominant_class() is PatternClass.SINGLE_COLUMN_MULTI_TILE
        assert result.is_single_class()
        # Column tiles: 112 / 16 = 7 corrupted columns, full height.
        assert result.mean_corrupted_cells() == 7 * 112

    def test_gemm_112_os_multi_tile(self):
        result = Campaign(
            MESH, GemmWorkload.square(112, OS), sites=SAMPLED
        ).run()
        assert result.dominant_class() is PatternClass.SINGLE_ELEMENT_MULTI_TILE
        # 7x7 output tiles each replicate the faulty element once.
        assert result.mean_corrupted_cells() == 49.0

    def test_same_fault_appears_across_tiles_at_stride_16(self):
        result = Campaign(
            MESH, GemmWorkload.square(112, OS), sites=[(3, 5)]
        ).run()
        coords = set(result.experiments[0].pattern.corrupted_cells())
        expected = {
            (3 + 16 * i, 5 + 16 * j) for i in range(7) for j in range(7)
        }
        assert coords == expected

    def test_reduction_tiling_alone_adds_no_spatial_structure(self):
        """Section IV-A3: K-dim tiles accumulate into the same coordinates."""
        fits = Campaign(
            MESH, GemmWorkload(16, 16, 16, WS), sites=[(0, 3)]
        ).run()
        deep = Campaign(
            MESH, GemmWorkload(16, 112, 16, WS), sites=[(0, 3)]
        ).run()
        assert np.array_equal(
            fits.experiments[0].pattern.mask, deep.experiments[0].pattern.mask
        )


class TestDiscussionClaims:
    def test_every_campaign_single_class(self):
        """'For each configuration ... we found the same fault pattern
        class, regardless of the MAC unit into which we injected.'"""
        exhaustive = [
            GemmWorkload.square(16, OS),
            GemmWorkload.square(16, WS),
            ConvWorkload.paper_kernel(16, (3, 3, 3, 3)),
            ConvWorkload.paper_kernel(16, (3, 3, 3, 8)),
        ]
        for workload in exhaustive:
            result = Campaign(MESH, workload).run()
            assert result.is_single_class(), workload.describe()
        sampled = [
            GemmWorkload.square(112, OS),
            GemmWorkload.square(112, WS),
        ]
        for workload in sampled:
            result = Campaign(MESH, workload, sites=SAMPLED).run()
            assert result.is_single_class(), workload.describe()

    def test_patterns_fully_deterministic_and_predictable(self):
        """The determinism claim: the analytical predictor reproduces every
        exhaustive-campaign pattern exactly, for GEMM and conv alike."""
        for workload in (
            GemmWorkload.square(16, WS),
            GemmWorkload.square(16, OS),
            ConvWorkload.paper_kernel(16, (3, 3, 3, 8)),
        ):
            result = Campaign(MESH, workload).run()
            for experiment in result.experiments:
                predicted = predict_pattern(
                    experiment.site, result.plan, geometry=result.geometry
                )
                assert predicted.pattern_class is experiment.pattern_class
                assert np.array_equal(
                    predicted.support, experiment.pattern.gemm_mask()
                )

    def test_all_observed_classes_are_in_the_taxonomy(self):
        """'All the fault patterns we found are well-defined.'"""
        taxonomy = {
            PatternClass.SINGLE_ELEMENT,
            PatternClass.SINGLE_ELEMENT_MULTI_TILE,
            PatternClass.SINGLE_COLUMN,
            PatternClass.SINGLE_COLUMN_MULTI_TILE,
            PatternClass.SINGLE_CHANNEL,
            PatternClass.MULTI_CHANNEL,
            PatternClass.MASKED,
        }
        for workload in (
            GemmWorkload.square(16, OS),
            GemmWorkload.square(112, WS),
            ConvWorkload.paper_kernel(16, (3, 3, 3, 3)),
        ):
            result = Campaign(MESH, workload, sites=SAMPLED).run()
            assert set(result.census()) <= taxonomy
