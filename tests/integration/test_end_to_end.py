"""Cross-stack integration: accelerator, app-level FI, and DNN studies."""

import numpy as np
import pytest

from repro.appfi import AppLevelInjector, attach_permanent_fault
from repro.core import Campaign, GemmWorkload, extract_pattern
from repro.faults import FaultInjector, FaultSet, FaultSite, StuckAtFault
from repro.gemmini import GemminiAccelerator
from repro.nn import (
    SystolicBackend,
    build_dense_classifier,
    make_digits,
)
from repro.ops import TiledGemm, reference_gemm
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig.paper()
WS = Dataflow.WEIGHT_STATIONARY


class TestAcceleratorCampaignAgreement:
    def test_accelerator_fault_pattern_matches_campaign(self):
        """The full Gemmini-like stack shows the same single-column pattern
        the bare-mesh campaign shows: the stack adds no fault behaviour."""
        ones = np.ones((16, 16), dtype=np.int64)
        site = FaultSite(4, 9, "sum", 20)
        injector = FaultInjector.single_stuck_at(site, 1)

        accel_out = GemminiAccelerator(MESH, injector=injector).matmul(
            ones, ones, dataflow=WS
        )
        golden = reference_gemm(ones, ones)
        accel_mask = golden != accel_out

        campaign = Campaign(MESH, GemmWorkload.square(16, WS), sites=[(4, 9)])
        campaign_mask = campaign.run().experiments[0].pattern.mask
        assert np.array_equal(accel_mask, campaign_mask)


class TestAppFiVsRtl:
    def test_pattern_support_identical(self):
        """The paper's proposal validated end to end: the application-level
        injector corrupts exactly the cells the RTL-equivalent simulator
        corrupts, for the anti-masking workload."""
        ones = np.ones((48, 48), dtype=np.int64)
        golden = reference_gemm(ones, ones)
        site = FaultSite(7, 3, "sum", 20)

        rtl = TiledGemm(
            FunctionalSimulator(MESH, FaultInjector.single_stuck_at(site, 1))
        )(ones, ones, WS)
        rtl_mask = extract_pattern(golden, rtl.output, plan=rtl.plan).mask

        app = AppLevelInjector(MESH, WS, bit=20, mode="stuck1")
        app_out = app.inject_gemm(golden, k=48, site=site)
        app_mask = golden != app_out

        assert np.array_equal(rtl_mask, app_mask)

    def test_appfi_runs_mesh_sizes_the_fpga_could_not(self):
        """Scalability: a 128x128 hardware model (10x the paper's FPGA
        capacity) derives patterns instantly at app level."""
        big = MeshConfig(rows=128, cols=128)
        injector = AppLevelInjector(big, WS, bit=20)
        output = np.zeros((256, 256), dtype=np.int64)
        corrupted = injector.inject_gemm(
            output, k=256, site=FaultSite(77, 100, "sum", 20)
        )
        cols = sorted(set(np.where(output != corrupted)[1]))
        assert cols == [100, 228]


class TestDnnDegradationStudy:
    """The Zhang et al. motivation from the paper's introduction."""

    def test_accuracy_drops_with_faulty_macs(self):
        x, y = make_digits(150, noise=0.03, seed=11)
        model = build_dense_classifier()
        baseline = model.evaluate(x, y)
        assert baseline > 0.85

        rng = np.random.default_rng(0)
        accuracies = []
        for num_faults in (1, 4, 8):
            sites = set()
            while len(sites) < num_faults:
                sites.add(
                    (int(rng.integers(0, 10)), int(rng.integers(0, 10)))
                )
            faults = FaultSet.from_iterable(
                StuckAtFault(site=FaultSite(r, c, "sum", 28), stuck_value=1)
                for r, c in sites
            )
            model.set_backend(SystolicBackend(MESH, FaultInjector(faults), WS))
            accuracies.append(model.evaluate(x, y))

        # Even a single faulty MAC (0.4% of the mesh) craters accuracy —
        # the paper's motivating observation.
        assert accuracies[0] < baseline - 0.3
        assert min(accuracies) <= accuracies[0]

    def test_app_level_and_rtl_level_fi_agree_on_verdict(self):
        x, y = make_digits(150, noise=0.03, seed=12)
        site = FaultSite(0, 4, "sum", 28)

        rtl_model = build_dense_classifier()
        rtl_model.set_backend(
            SystolicBackend(MESH, FaultInjector.single_stuck_at(site, 1), WS)
        )
        rtl_acc = rtl_model.evaluate(x, y)

        app_model = build_dense_classifier()
        attach_permanent_fault(app_model, MESH, site, bit=28)
        app_acc = app_model.evaluate(x, y)

        golden = build_dense_classifier().evaluate(x, y)
        # Both abstraction levels agree the fault is catastrophic.
        assert rtl_acc < golden - 0.3
        assert app_acc < golden - 0.3
