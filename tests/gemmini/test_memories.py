"""Unit tests for the scratchpad, accumulator, and host memory models."""

import numpy as np
import pytest

from repro.gemmini.accumulator import AccumulatorMemory
from repro.gemmini.dma import DmaEngine, HostMemory
from repro.gemmini.scratchpad import Scratchpad


class TestScratchpad:
    def test_geometry(self):
        sp = Scratchpad(banks=4, rows_per_bank=8, row_elems=16)
        assert sp.total_rows == 32
        assert sp.capacity_bytes == 32 * 16  # INT8 elements
        assert sp.bank_of(0) == 0
        assert sp.bank_of(8) == 1
        assert sp.bank_of(31) == 3

    def test_write_read_roundtrip(self, rng):
        sp = Scratchpad(banks=1, rows_per_bank=16, row_elems=8)
        block = rng.integers(-128, 128, size=(4, 6))
        sp.write_block(3, block)
        assert np.array_equal(sp.read_block(3, 4, 6), block)

    def test_write_wraps_to_int8(self):
        sp = Scratchpad(banks=1, rows_per_bank=4, row_elems=4)
        sp.write_block(0, np.array([[200]]))
        assert sp.read_block(0, 1, 1)[0, 0] == -56

    def test_partial_row_zero_padded(self):
        sp = Scratchpad(banks=1, rows_per_bank=4, row_elems=4)
        sp.write_block(0, np.full((1, 4), 7))
        sp.write_block(0, np.array([[1, 2]]))
        assert np.array_equal(sp.read_block(0, 1, 4), [[1, 2, 0, 0]])

    def test_capacity_enforced(self):
        sp = Scratchpad(banks=1, rows_per_bank=4, row_elems=4)
        with pytest.raises(IndexError):
            sp.write_block(3, np.ones((2, 2)))
        with pytest.raises(ValueError):
            sp.write_block(0, np.ones((1, 5)))

    def test_traffic_counters(self):
        sp = Scratchpad(banks=1, rows_per_bank=8, row_elems=4)
        sp.write_block(0, np.ones((3, 4)))
        sp.read_block(0, 2, 4)
        assert sp.writes == 3
        assert sp.reads == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Scratchpad(banks=0)


class TestAccumulator:
    def test_overwrite_then_accumulate(self):
        acc = AccumulatorMemory(rows=8, row_elems=4)
        acc.store_block(0, np.full((2, 4), 10))
        acc.store_block(0, np.full((2, 4), 5), accumulate=True)
        assert np.all(acc.read_block(0, 2, 4) == 15)

    def test_overwrite_clears_previous(self):
        acc = AccumulatorMemory(rows=8, row_elems=4)
        acc.store_block(0, np.full((1, 4), 9))
        acc.store_block(0, np.array([[1, 2]]), accumulate=False)
        assert np.array_equal(acc.read_block(0, 1, 4), [[1, 2, 0, 0]])

    def test_accumulate_wraps_int32(self):
        acc = AccumulatorMemory(rows=2, row_elems=2)
        acc.store_block(0, np.array([[2**31 - 1, 0]]))
        acc.store_block(0, np.array([[1, 0]]), accumulate=True)
        assert acc.read_block(0, 1, 1)[0, 0] == -(2**31)

    def test_range_enforced(self):
        acc = AccumulatorMemory(rows=2, row_elems=2)
        with pytest.raises(IndexError):
            acc.store_block(1, np.ones((2, 2)))
        with pytest.raises(ValueError):
            acc.read_block(0, 1, 3)


class TestHostMemory:
    def test_alloc_and_roundtrip(self, rng):
        host = HostMemory(capacity_elems=1024)
        array = host.alloc(5, 7)
        values = rng.integers(-1000, 1000, size=(5, 7))
        host.store(array, values)
        assert np.array_equal(host.load(array), values)

    def test_allocations_do_not_overlap(self):
        host = HostMemory(capacity_elems=64)
        a = host.alloc(2, 4)
        b = host.alloc(2, 4)
        host.store(a, np.full((2, 4), 1))
        host.store(b, np.full((2, 4), 2))
        assert np.all(host.load(a) == 1)
        assert host.allocated == 16

    def test_exhaustion(self):
        host = HostMemory(capacity_elems=8)
        host.alloc(2, 4)
        with pytest.raises(MemoryError):
            host.alloc(1, 1)

    def test_strided_access_reads_submatrix(self, rng):
        host = HostMemory(capacity_elems=64)
        array = host.alloc(4, 6)
        values = rng.integers(0, 100, size=(4, 6))
        host.store(array, values)
        block = host.read_strided(array.addr + 6 + 2, array.stride, 2, 3)
        assert np.array_equal(block, values[1:3, 2:5])

    def test_strided_write(self):
        host = HostMemory(capacity_elems=64)
        array = host.alloc(3, 4)
        host.store(array, np.zeros((3, 4)))
        host.write_strided(array.addr + 1, array.stride, np.full((3, 2), 9))
        assert np.array_equal(host.load(array)[:, 1:3], np.full((3, 2), 9))

    def test_strided_bounds_checked(self):
        host = HostMemory(capacity_elems=16)
        with pytest.raises(IndexError):
            host.read_strided(8, 4, 3, 4)
        with pytest.raises(ValueError):
            host.read_strided(0, 2, 1, 4)  # stride < cols


class TestDmaEngine:
    def test_mvin_and_mvout_traffic(self, rng):
        host = HostMemory(capacity_elems=256)
        sp = Scratchpad(banks=1, rows_per_bank=16, row_elems=8)
        acc = AccumulatorMemory(rows=16, row_elems=8)
        dma = DmaEngine(host, sp, acc)
        src = host.alloc(4, 8)
        values = rng.integers(-128, 128, size=(4, 8))
        host.store(src, values)
        dma.mvin(src.addr, src.stride, 0, 4, 8)
        assert np.array_equal(sp.read_block(0, 4, 8), values)
        assert dma.bytes_in == 4 * 8  # INT8

        acc.store_block(0, values)
        dst = host.alloc(4, 8)
        dma.mvout_acc(0, dst.addr, dst.stride, 4, 8)
        assert np.array_equal(host.load(dst), values)
        assert dma.bytes_out == 4 * 8 * 4  # INT32
