"""Unit tests for the analytical performance model."""

import numpy as np
import pytest

from repro.gemmini.performance import PerformanceModel
from repro.ops.gemm import TiledGemm
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

MESH = MeshConfig.paper()


class TestComputeComponent:
    @pytest.mark.parametrize("dataflow", list(Dataflow))
    @pytest.mark.parametrize("size", [8, 16, 48])
    def test_matches_simulator_cycles_exactly(self, dataflow, size):
        """The model's compute cycles must equal what the engine counts."""
        model = PerformanceModel(MESH)
        plan = plan_gemm_tiling(size, min(size, 16), size, MESH, dataflow)
        estimate = model.estimate(plan)

        engine = FunctionalSimulator(MESH)
        a = np.ones((size, min(size, 16)), dtype=np.int64)
        b = np.ones((min(size, 16), size), dtype=np.int64)
        TiledGemm(engine)(a, b, dataflow)
        assert estimate.compute_cycles == engine.cycles_elapsed

    def test_macs_counted(self):
        plan = plan_gemm_tiling(16, 16, 16, MESH, Dataflow.WEIGHT_STATIONARY)
        estimate = PerformanceModel(MESH).estimate(plan)
        assert estimate.macs == 16**3


class TestDmaComponent:
    def test_overlap_reduces_total(self):
        plan = plan_gemm_tiling(112, 112, 112, MESH, Dataflow.WEIGHT_STATIONARY)
        with_overlap = PerformanceModel(MESH, overlap=True).estimate(plan)
        without = PerformanceModel(MESH, overlap=False).estimate(plan)
        assert with_overlap.total_cycles < without.total_cycles
        # Same work either way.
        assert with_overlap.compute_cycles == without.compute_cycles
        assert with_overlap.dma_cycles == without.dma_cycles

    def test_low_bandwidth_becomes_dma_bound(self):
        plan = plan_gemm_tiling(16, 16, 16, MESH, Dataflow.WEIGHT_STATIONARY)
        fast_dma = PerformanceModel(MESH, dma_bytes_per_cycle=64).estimate(plan)
        slow_dma = PerformanceModel(MESH, dma_bytes_per_cycle=1).estimate(plan)
        assert not fast_dma.dma_bound
        assert slow_dma.dma_bound
        assert slow_dma.total_cycles > fast_dma.total_cycles

    def test_bandwidth_validated(self):
        with pytest.raises(ValueError):
            PerformanceModel(MESH, dma_bytes_per_cycle=0)


class TestUtilization:
    def test_utilization_bounded(self):
        for dataflow in Dataflow:
            plan = plan_gemm_tiling(112, 16, 112, MESH, dataflow)
            estimate = PerformanceModel(MESH).estimate(plan)
            assert 0.0 < estimate.utilization <= 1.0

    def test_bigger_tiles_utilize_better(self):
        """Streaming long dimensions amortises pipeline fill/drain."""
        short = plan_gemm_tiling(16, 16, 16, MESH, Dataflow.WEIGHT_STATIONARY)
        long_stream = plan_gemm_tiling(
            16 * 64, 16, 16, MESH, Dataflow.WEIGHT_STATIONARY,
            tile_m=16 * 64,
        )
        model = PerformanceModel(MESH, dma_bytes_per_cycle=64)
        assert (
            model.estimate(long_stream).utilization
            > model.estimate(short).utilization
        )

    def test_conv_costs_more_cycles_than_gemm(self):
        """The shape behind the paper's 45 s vs 130 s: the lowered conv
        GEMM carries more work than the same-size square GEMM."""
        from repro.ops.im2col import ConvGeometry

        gemm_plan = plan_gemm_tiling(16, 16, 16, MESH, Dataflow.WEIGHT_STATIONARY)
        g = ConvGeometry(n=1, c=3, h=16, w=16, k=8, r=3, s=3)
        conv_plan = plan_gemm_tiling(
            g.gemm_m, g.gemm_k, g.gemm_n, MESH, Dataflow.WEIGHT_STATIONARY
        )
        model = PerformanceModel(MESH)
        assert (
            model.estimate_conv(g, conv_plan).total_cycles
            > model.estimate(gemm_plan).total_cycles
        )
