"""Unit tests for the accelerator controller's command interpretation."""

import numpy as np
import pytest

from repro.gemmini.accumulator import AccumulatorMemory
from repro.gemmini.controller import Controller
from repro.gemmini.dma import DmaEngine, HostMemory
from repro.gemmini.isa import Compute, ConfigEx, Fence, Mvin, MvoutAcc, Preload
from repro.gemmini.scratchpad import Scratchpad
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig


@pytest.fixture
def rig(mesh4):
    host = HostMemory(capacity_elems=4096)
    sp = Scratchpad(banks=1, rows_per_bank=64, row_elems=4)
    acc = AccumulatorMemory(rows=64, row_elems=4)
    dma = DmaEngine(host, sp, acc)
    engine = FunctionalSimulator(mesh4)
    return host, sp, acc, Controller(engine, sp, acc, dma)


class TestBasicSequencing:
    def test_requires_config(self, rig):
        host, sp, acc, ctrl = rig
        with pytest.raises(RuntimeError):
            _ = ctrl.dataflow

    def test_compute_requires_preload(self, rig):
        host, sp, acc, ctrl = rig
        ctrl.execute_one(ConfigEx(dataflow=Dataflow.WEIGHT_STATIONARY))
        with pytest.raises(RuntimeError):
            ctrl.execute_one(Compute(a_sp_row=0, a_rows=2, a_cols=2))

    def test_preload_is_consumed(self, rig, rng):
        host, sp, acc, ctrl = rig
        a = rng.integers(-10, 10, size=(2, 2))
        w = rng.integers(-10, 10, size=(2, 2))
        sp.write_block(0, a)
        sp.write_block(2, w)
        ctrl.execute(
            [
                ConfigEx(dataflow=Dataflow.WEIGHT_STATIONARY),
                Preload(sp_row=2, rows=2, cols=2, acc_row=0, accumulate=False),
                Compute(a_sp_row=0, a_rows=2, a_cols=2),
            ]
        )
        with pytest.raises(RuntimeError):
            ctrl.execute_one(Compute(a_sp_row=0, a_rows=2, a_cols=2))

    def test_unknown_command_rejected(self, rig):
        host, sp, acc, ctrl = rig
        with pytest.raises(TypeError):
            ctrl.execute_one(object())

    def test_stats(self, rig, rng):
        host, sp, acc, ctrl = rig
        sp.write_block(0, np.ones((2, 2)))
        sp.write_block(2, np.ones((2, 2)))
        ctrl.execute(
            [
                ConfigEx(dataflow=Dataflow.WEIGHT_STATIONARY),
                Preload(sp_row=2, rows=2, cols=2, acc_row=0, accumulate=False),
                Compute(a_sp_row=0, a_rows=2, a_cols=2),
                Fence(),
            ]
        )
        assert ctrl.stats.commands == 4
        assert ctrl.stats.computes == 1
        assert ctrl.stats.preloads == 1
        assert ctrl.stats.fences == 1


class TestComputeSemantics:
    def test_ws_tile_result(self, rig, rng):
        host, sp, acc, ctrl = rig
        a = rng.integers(-10, 10, size=(3, 2))
        w = rng.integers(-10, 10, size=(2, 4))
        sp.write_block(0, a)
        sp.write_block(4, w)
        ctrl.execute(
            [
                ConfigEx(dataflow=Dataflow.WEIGHT_STATIONARY),
                Preload(sp_row=4, rows=2, cols=4, acc_row=8, accumulate=False),
                Compute(a_sp_row=0, a_rows=3, a_cols=2),
            ]
        )
        assert np.array_equal(acc.read_block(8, 3, 4), a @ w)

    def test_os_tile_streams_b_from_scratchpad(self, rig, rng):
        host, sp, acc, ctrl = rig
        a = rng.integers(-10, 10, size=(2, 3))
        b = rng.integers(-10, 10, size=(3, 2))
        sp.write_block(0, a)
        sp.write_block(4, b)
        ctrl.execute(
            [
                ConfigEx(dataflow=Dataflow.OUTPUT_STATIONARY),
                Preload(sp_row=0, rows=3, cols=2, acc_row=0, accumulate=False),
                Compute(
                    a_sp_row=0, a_rows=2, a_cols=3,
                    b_sp_row=4, b_rows=3, b_cols=2,
                ),
            ]
        )
        assert np.array_equal(acc.read_block(0, 2, 2), a @ b)

    def test_accumulate_flag_chains_reduction_tiles(self, rig):
        host, sp, acc, ctrl = rig
        a = np.full((2, 2), 2)
        w = np.full((2, 2), 3)
        sp.write_block(0, a)
        sp.write_block(2, w)
        commands = [
            ConfigEx(dataflow=Dataflow.WEIGHT_STATIONARY),
            Preload(sp_row=2, rows=2, cols=2, acc_row=0, accumulate=False),
            Compute(a_sp_row=0, a_rows=2, a_cols=2),
            Preload(sp_row=2, rows=2, cols=2, acc_row=0, accumulate=True),
            Compute(a_sp_row=0, a_rows=2, a_cols=2),
        ]
        ctrl.execute(commands)
        assert np.all(acc.read_block(0, 2, 2) == 2 * (a @ w)[0, 0])
