"""Unit tests for the end-to-end accelerator stack."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultSite
from repro.gemmini import GemminiAccelerator
from repro.ops import TiledGemm, reference_conv2d, reference_gemm
from repro.systolic import Dataflow, FunctionalSimulator, MeshConfig

from tests.conftest import stuck_at


class TestGoldenEquivalence:
    @pytest.mark.parametrize("dataflow", list(Dataflow))
    @pytest.mark.parametrize("shape", [(4, 4, 4), (10, 7, 9), (1, 20, 3)])
    def test_matmul_matches_reference(self, mesh4, rng, dataflow, shape):
        m, k, n = shape
        a = rng.integers(-128, 128, size=(m, k))
        b = rng.integers(-128, 128, size=(k, n))
        accel = GemminiAccelerator(mesh4)
        assert np.array_equal(
            accel.matmul(a, b, dataflow=dataflow), reference_gemm(a, b)
        )

    def test_conv2d_matches_reference(self, mesh4, rng):
        x = rng.integers(-50, 50, size=(1, 3, 6, 6))
        w = rng.integers(-50, 50, size=(4, 3, 3, 3))
        accel = GemminiAccelerator(mesh4)
        assert np.array_equal(
            accel.conv2d(x, w, padding=1), reference_conv2d(x, w, padding=1)
        )

    def test_bias_path(self, mesh4, rng):
        a = rng.integers(-50, 50, size=(6, 5))
        b = rng.integers(-50, 50, size=(5, 7))
        bias = rng.integers(-1000, 1000, size=(6, 7))
        accel = GemminiAccelerator(mesh4)
        out = accel.matmul(a, b, dataflow=Dataflow.WEIGHT_STATIONARY, bias=bias)
        assert np.array_equal(out, reference_gemm(a, b, bias=bias))

    def test_cycle_engine_variant(self, mesh4, rng):
        a = rng.integers(-50, 50, size=(5, 5))
        b = rng.integers(-50, 50, size=(5, 5))
        accel = GemminiAccelerator(mesh4, engine="cycle")
        assert np.array_equal(accel.matmul(a, b), reference_gemm(a, b))

    def test_bad_engine_rejected(self, mesh4):
        with pytest.raises(ValueError):
            GemminiAccelerator(mesh4, engine="quantum")


class TestFaultyEquivalence:
    """The accelerator path equals TiledGemm's memory-reduction mode."""

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_matches_memory_reduction(self, mesh4, rng, dataflow):
        inj = stuck_at(1, 2, bit=18)
        a = rng.integers(-128, 128, size=(9, 10))
        b = rng.integers(-128, 128, size=(10, 6))
        accel = GemminiAccelerator(mesh4, injector=inj)
        gemm = TiledGemm(FunctionalSimulator(mesh4, inj), reduction="memory")
        assert np.array_equal(
            accel.matmul(a, b, dataflow=dataflow),
            gemm(a, b, dataflow).output,
        )

    def test_ws_fault_corrupts_column_stripes(self, mesh4):
        ones = np.ones((8, 8), dtype=np.int64)
        accel = GemminiAccelerator(mesh4, injector=stuck_at(0, 1, bit=20))
        out = accel.matmul(ones, ones, dataflow=Dataflow.WEIGHT_STATIONARY)
        diff = reference_gemm(ones, ones) != out
        assert sorted(set(np.where(diff)[1])) == [1, 5]


class TestStats:
    def test_command_and_traffic_accounting(self, mesh4, rng):
        a = rng.integers(-10, 10, size=(8, 8))
        b = rng.integers(-10, 10, size=(8, 8))
        accel = GemminiAccelerator(mesh4)
        accel.matmul(a, b, dataflow=Dataflow.WEIGHT_STATIONARY)
        stats = accel.stats()
        # 2x2 output tiles x 2 reduction tiles = 8 computes/preloads.
        assert stats.controller.computes == 8
        assert stats.controller.preloads == 8
        assert stats.controller.mvouts == 4
        assert stats.tiles_executed == 8
        assert stats.mesh_cycles > 0
        # One A tile + one B tile (4x4 INT8 each) moved per compute; the
        # runtime does not cache tiles across iterations.
        assert stats.dma_bytes_in == 8 * (16 + 16)
        assert stats.dma_bytes_out == 8 * 8 * 4  # C, INT32

    def test_scratchpad_capacity_is_honest(self):
        # A tiny scratchpad must reject oversized command streams.
        mesh = MeshConfig(4, 4)
        accel = GemminiAccelerator(mesh, scratchpad_rows=4)
        ones = np.ones((4, 4), dtype=np.int64)
        with pytest.raises(IndexError):
            accel.matmul(ones, ones)
