"""Progress-line anatomy, ETA formatting, and the Observability bundle."""

from __future__ import annotations

import io
import re

from repro.obs import NULL_OBS, MetricsRegistry, Observability, TraceRecorder
from repro.obs.progress import ProgressReporter, format_eta


class TestFormatEta:
    def test_plain_rendering(self):
        assert format_eta(0) == "0:00:00"
        assert format_eta(59.6) == "0:01:00"  # rounds to nearest second
        assert format_eta(3723) == "1:02:03"

    def test_unknown_values(self):
        assert format_eta(-1) == "--:--:--"
        assert format_eta(float("inf")) == "--:--:--"
        assert format_eta(float("nan")) == "--:--:--"


#: The documented line shape (docs/observability.md anatomy section).
LINE_RE = re.compile(
    r"^(?P<label>\S+)  (?P<done>\d+)/(?P<total>\d+) \((?P<pct>\d+\.\d)%\)  "
    r"(?P<rate>\d+\.\d) sites/s  ETA (?P<eta>[\d:]+|--:--:--)  "
    r"retries (?P<retries>\d+)  quarantined (?P<quarantined>\d+)$"
)


class TestProgressReporter:
    def _reporter(self):
        stream = io.StringIO()
        return ProgressReporter(stream=stream, min_interval=0.0), stream

    def test_line_anatomy(self):
        reporter, _ = self._reporter()
        reporter.begin(256)
        reporter.advance(12)
        match = LINE_RE.match(reporter.line())
        assert match, reporter.line()
        assert match["label"] == "campaign"
        assert match["done"] == "12"
        assert match["total"] == "256"

    def test_counts_accumulate(self):
        reporter, _ = self._reporter()
        reporter.begin(16)
        reporter.advance(4)
        reporter.note_retry()
        reporter.note_quarantine(2)
        match = LINE_RE.match(reporter.line())
        assert match["retries"] == "1"
        assert match["quarantined"] == "2"

    def test_resume_seeds_done_but_not_rate(self):
        # Restored sites count toward done/total, not toward sites/s.
        reporter, _ = self._reporter()
        reporter.begin(100, done=40)
        assert LINE_RE.match(reporter.line())["done"] == "40"
        assert reporter.rate() == 0.0
        reporter.advance(10)
        assert reporter.rate() > 0.0

    def test_writes_carriage_return_refresh_and_final_newline(self):
        reporter, stream = self._reporter()
        reporter.begin(4)
        reporter.advance(4)
        reporter.finish()
        output = stream.getvalue()
        assert output.startswith("\r\x1b[2K")
        assert output.endswith("\n")
        assert "4/4 (100.0%)" in output

    def test_finish_is_idempotent(self):
        reporter, stream = self._reporter()
        reporter.begin(1)
        reporter.finish()
        length = len(stream.getvalue())
        reporter.finish()  # inactive: no further writes
        assert len(stream.getvalue()) == length

    def test_throttling(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=3600.0)
        reporter.begin(100)  # forced render
        first = len(stream.getvalue())
        for _ in range(50):
            reporter.advance()  # all inside the throttle window
        assert len(stream.getvalue()) == first


class TestObservabilityBundle:
    def test_null_bundle_is_unarmed(self):
        assert NULL_OBS.armed is False
        assert NULL_OBS.telemetry(1.0, 16) is None

    def test_any_pillar_arms(self):
        assert Observability(recorder=TraceRecorder()).armed
        assert Observability(metrics=MetricsRegistry()).armed
        assert Observability(progress=ProgressReporter(stream=io.StringIO())).armed

    def test_telemetry_summary(self):
        metrics = MetricsRegistry()
        metrics.counter("repro_sites_completed_total").inc(8)
        metrics.counter("repro_golden_cache_hits_total").inc(3)
        metrics.counter("repro_golden_cache_misses_total").inc(1)
        metrics.counter("repro_shard_retries_total").inc(2)
        metrics.counter("repro_quarantined_sites_total").inc(1)
        telemetry = Observability(metrics=metrics).telemetry(2.0, 8)
        assert telemetry == {
            "elapsed_seconds": 2.0,
            "sites": 8,
            "sites_completed": 8,
            "sites_per_second": 4.0,
            "golden_cache_hit_rate": 0.75,
            "retries": 2,
            "quarantined": 1,
        }

    def test_telemetry_handles_zero_denominators(self):
        telemetry = Observability(metrics=MetricsRegistry()).telemetry(0.0, 0)
        assert telemetry["sites_per_second"] == 0.0
        assert telemetry["golden_cache_hit_rate"] == 0.0
