"""Metric instruments, Prometheus exposition, and the snapshot codec."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 3]  # cumulative, +Inf is count
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(110.5)

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_histogram_percentile_interpolates(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)
        assert 1.0 <= histogram.percentile(0.5) <= 2.0
        assert histogram.percentile(0.0) == 0.0 or histogram.percentile(0.0) <= 2.0

    def test_histogram_percentile_bounds(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0  # no observations yet
        with pytest.raises(ValueError):
            histogram.percentile(1.5)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_events_total", "Events.")
        first.inc()
        second = registry.counter("repro_events_total")
        assert first is second
        assert registry.value("repro_events_total") == 1.0

    def test_labels_key_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("repro_failures_total", kind="timeout").inc()
        registry.counter("repro_failures_total", kind="crash").inc(2)
        assert registry.value("repro_failures_total", kind="timeout") == 1.0
        assert registry.value("repro_failures_total", kind="crash") == 2.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_thing")

    def test_value_of_absent_metric_is_zero(self):
        assert MetricsRegistry().value("repro_never_touched") == 0.0

    def test_value_of_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds")
        with pytest.raises(ValueError, match="histogram"):
            registry.value("repro_latency_seconds")

    def test_histogram_at(self):
        registry = MetricsRegistry()
        assert registry.histogram_at("repro_latency_seconds") is None
        histogram = registry.histogram("repro_latency_seconds")
        assert registry.histogram_at("repro_latency_seconds") is histogram
        registry.counter("repro_count_total")
        with pytest.raises(ValueError):
            registry.histogram_at("repro_count_total")


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge("repro_sites_total", "Sites in the sweep.").set(256)
    registry.counter("repro_sites_completed_total", "Completed sites.").inc(256)
    registry.counter("repro_shard_failures_total", "Failures.", kind="timeout").inc()
    histogram = registry.histogram("repro_shard_seconds", "Shard latency.")
    for value in (0.003, 0.07, 0.4, 2.0):
        histogram.observe(value)
    return registry


class TestSnapshotCodec:
    def test_round_trip_preserves_everything(self):
        original = _populated_registry()
        restored = MetricsRegistry.from_snapshot(original.snapshot())
        assert restored.snapshot() == original.snapshot()
        assert restored.value("repro_sites_total") == 256.0
        assert restored.value("repro_shard_failures_total", kind="timeout") == 1.0
        histogram = restored.histogram_at("repro_shard_seconds")
        assert histogram is not None
        assert histogram.count == 4
        assert histogram.buckets == DEFAULT_BUCKETS
        # The restored exposition is byte-identical too.
        assert restored.render_prometheus() == original.render_prometheus()

    def test_snapshot_is_json_compatible_and_sorted(self):
        import json

        snapshot = _populated_registry().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        names = [entry["name"] for entry in snapshot]
        assert names == sorted(names)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricsRegistry.from_snapshot(
                [{"name": "x", "kind": "summary", "labels": {}, "value": 1}]
            )


class TestPrometheusExposition:
    def test_render_parses_back(self):
        text = _populated_registry().render_prometheus()
        samples = parse_prometheus(text)
        assert samples["repro_sites_total"] == 256.0
        assert samples['repro_shard_failures_total{kind="timeout"}'] == 1.0
        assert samples["repro_shard_seconds_count"] == 4.0
        assert samples['repro_shard_seconds_bucket{le="+Inf"}'] == 4.0

    def test_histogram_buckets_are_cumulative_in_text(self):
        text = _populated_registry().render_prometheus()
        samples = parse_prometheus(text)
        bucket_values = [
            value
            for line, value in sorted(samples.items())
            if line.startswith("repro_shard_seconds_bucket")
        ]
        assert all(b >= 0 for b in bucket_values)
        assert max(bucket_values) == samples["repro_shard_seconds_count"]

    def test_help_and_type_comments_present(self):
        text = _populated_registry().render_prometheus()
        assert "# HELP repro_sites_total Sites in the sweep." in text
        assert "# TYPE repro_sites_total gauge" in text
        assert "# TYPE repro_shard_seconds histogram" in text

    @pytest.mark.parametrize(
        "bad",
        [
            "# BOGUS comment line",
            "# TYPE repro_x weird",
            "repro_x{unbalanced 1.0",
            "repro_x not_a_number",
            "just-one-token",
        ],
    )
    def test_parser_rejects_malformed_lines(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus(bad)

    def test_parser_accepts_blank_lines(self):
        assert parse_prometheus("\n\nrepro_x 1.0\n") == {"repro_x": 1.0}


class TestNullMetrics:
    def test_everything_is_a_noop_singleton(self):
        counter = NULL_METRICS.counter("repro_anything_total", "ignored")
        counter.inc()
        counter.inc(100)
        gauge = NULL_METRICS.gauge("repro_g")
        gauge.set(5)
        gauge.dec()
        histogram = NULL_METRICS.histogram("repro_h")
        histogram.observe(1.0)
        assert counter is gauge is histogram  # one shared null instrument
        assert NULL_METRICS.value("repro_anything_total") == 0.0
        assert NULL_METRICS.armed is False
