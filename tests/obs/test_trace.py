"""Span recorder and Chrome trace-event codec."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


class TestTraceRecorder:
    def test_span_records_complete_event(self):
        recorder = TraceRecorder()
        with recorder.span("work", cat="test", shard=3):
            pass
        (event,) = recorder.events()
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["args"] == {"shard": 3}

    def test_span_without_args_omits_args_key(self):
        recorder = TraceRecorder()
        with recorder.span("bare"):
            pass
        (event,) = recorder.events()
        assert "args" not in event
        assert event["cat"] == "repro"  # default category

    def test_nested_spans_are_ordered_inner_first(self):
        # The inner span closes first, so it is appended first; both land
        # on the same timeline and the outer interval contains the inner.
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.events()
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_instant_event(self):
        recorder = TraceRecorder()
        recorder.instant("marker", cat="test", kind="checkpoint")
        (event,) = recorder.events()
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert "dur" not in event
        assert event["args"] == {"kind": "checkpoint"}

    def test_drain_clears_and_ingest_adopts(self):
        worker = TraceRecorder()
        with worker.span("shard.run"):
            pass
        shipped = worker.drain()
        assert len(shipped) == 1
        assert worker.events() == []

        parent = TraceRecorder()
        with parent.span("campaign.execute"):
            pass
        parent.ingest(shipped)
        names = {event["name"] for event in parent.events()}
        assert names == {"campaign.execute", "shard.run"}

    def test_events_returns_a_copy(self):
        recorder = TraceRecorder()
        recorder.instant("once")
        snapshot = recorder.events()
        snapshot.clear()
        assert len(recorder.events()) == 1

    def test_armed(self):
        assert TraceRecorder().armed is True


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        null = NullRecorder()
        with null.span("work", cat="x", key="v") as span:
            pass
        null.instant("marker")
        null.ingest([{"name": "foreign"}])
        assert null.drain() == []
        assert null.events() == []
        assert null.armed is False
        # The span context manager is the shared singleton — no per-call
        # allocation on the disabled path.
        assert null.span("again") is span

    def test_shared_singleton(self):
        assert NULL_RECORDER.armed is False
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")


class TestChromeTraceCodec:
    def _events(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        recorder.instant("mark")
        return recorder.events()

    def test_to_chrome_trace_shape_and_order(self):
        data = to_chrome_trace(reversed(self._events()))
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        timestamps = [event["ts"] for event in data["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_round_trip_through_json_validates(self):
        data = json.loads(json.dumps(to_chrome_trace(self._events())))
        assert validate_chrome_trace(data) == []

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(self._events(), tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        assert len(data["traceEvents"]) == 3


class TestValidateChromeTrace:
    def test_rejects_non_dict_root(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace(None) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"displayTimeUnit": "ms"}) != []

    @pytest.mark.parametrize("field", ["name", "ph", "ts", "pid", "tid"])
    def test_rejects_missing_required_field(self, field):
        event = {"name": "e", "ph": "i", "ts": 1, "pid": 1, "tid": 1}
        del event[field]
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert any(repr(field) in p for p in problems)

    def test_rejects_unknown_phase(self):
        event = {"name": "e", "ph": "Z", "ts": 1, "pid": 1, "tid": 1}
        assert validate_chrome_trace({"traceEvents": [event]}) != []

    def test_rejects_negative_ts(self):
        event = {"name": "e", "ph": "i", "ts": -5, "pid": 1, "tid": 1}
        assert validate_chrome_trace({"traceEvents": [event]}) != []

    def test_rejects_complete_event_without_duration(self):
        event = {"name": "e", "ph": "X", "ts": 1, "pid": 1, "tid": 1}
        assert validate_chrome_trace({"traceEvents": [event]}) != []
