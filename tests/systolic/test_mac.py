"""Unit tests for the MAC datapath model."""

import pytest

from repro.faults import FaultInjector, FaultSet, FaultSite, StuckAtFault
from repro.faults.sites import (
    SIGNAL_A_REG,
    SIGNAL_B_REG,
    SIGNAL_PRODUCT,
    SIGNAL_SUM,
)
from repro.systolic.mac import MacUnit
from repro.systolic.signals import RecordingProbe


class TestGoldenDatapath:
    def test_basic_mac(self):
        mac = MacUnit(row=0, col=0)
        assert mac.compute(3, 4, 10, cycle=0) == 22

    def test_negative_operands(self):
        mac = MacUnit(row=0, col=0)
        assert mac.compute(-3, 4, 0, cycle=0) == -12
        assert mac.compute(-3, -4, 0, cycle=0) == 12

    def test_operands_wrap_to_int8(self):
        mac = MacUnit(row=0, col=0)
        # 200 wraps to -56 in INT8, as the narrow operand register would.
        assert mac.compute(200, 1, 0, cycle=0) == -56

    def test_accumulator_wraps_int32(self):
        mac = MacUnit(row=0, col=0)
        assert mac.compute(1, 1, 2**31 - 1, cycle=0) == -(2**31)

    def test_not_faulty_by_default(self):
        assert not MacUnit(row=0, col=0).is_faulty


class TestFaultyDatapath:
    def _mac(self, signal: str, bit: int, stuck: int = 1) -> MacUnit:
        inj = FaultInjector.single_stuck_at(
            FaultSite(row=1, col=2, signal=signal, bit=bit), stuck
        )
        return MacUnit(row=1, col=2, injector=inj)

    def test_sum_fault_forces_output_bit(self):
        mac = self._mac(SIGNAL_SUM, 4)
        assert mac.compute(0, 0, 0, cycle=0) == 16
        assert mac.compute(1, 1, 0, cycle=0) == 17

    def test_sum_fault_masked_when_bit_set(self):
        mac = self._mac(SIGNAL_SUM, 4)
        assert mac.compute(4, 4, 0, cycle=0) == 16  # 16 already has bit 4

    def test_product_fault_feeds_adder(self):
        mac = self._mac(SIGNAL_PRODUCT, 4)
        # product = 0 forced to 16; sum = 16 + addend
        assert mac.compute(0, 0, 100, cycle=0) == 116

    def test_a_reg_fault_propagates_through_multiply(self):
        mac = self._mac(SIGNAL_A_REG, 1)
        # a = 0 forced to 2; 2 * 3 + 0 = 6
        assert mac.compute(0, 3, 0, cycle=0) == 6

    def test_b_reg_fault_propagates_through_multiply(self):
        mac = self._mac(SIGNAL_B_REG, 0)
        # b = 0 forced to 1; 5 * 1 + 1 = 6
        assert mac.compute(5, 0, 1, cycle=0) == 6

    def test_fault_on_other_mac_has_no_effect(self):
        inj = FaultInjector.single_stuck_at(FaultSite(0, 0, SIGNAL_SUM, 4))
        mac = MacUnit(row=1, col=1, injector=inj)
        assert not mac.is_faulty
        assert mac.compute(0, 0, 0, cycle=0) == 0

    def test_is_faulty_flag(self):
        assert self._mac(SIGNAL_SUM, 0).is_faulty


class TestProbing:
    def test_probe_sees_datapath_order(self):
        probe = RecordingProbe()
        mac = MacUnit(row=0, col=0, probe=probe)
        mac.compute(2, 3, 4, cycle=9)
        signals = [e.signal for e in probe.events]
        assert signals == [SIGNAL_A_REG, SIGNAL_B_REG, SIGNAL_PRODUCT, SIGNAL_SUM]
        values = probe.values()
        assert values == [2, 3, 6, 10]
        assert all(e.cycle == 9 for e in probe.events)

    def test_probe_sees_post_fault_values(self):
        inj = FaultInjector.single_stuck_at(FaultSite(0, 0, SIGNAL_SUM, 4))
        probe = RecordingProbe(signal=SIGNAL_SUM)
        mac = MacUnit(row=0, col=0, injector=inj, probe=probe)
        mac.compute(0, 0, 0, cycle=0)
        assert probe.values() == [16]

    def test_probe_filters_by_mac(self):
        probe = RecordingProbe(mac=(5, 5))
        mac = MacUnit(row=0, col=0, probe=probe)
        mac.compute(1, 1, 0, cycle=0)
        assert probe.events == []
