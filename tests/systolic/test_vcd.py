"""Unit tests for VCD waveform export."""

import numpy as np

from repro.systolic import CycleSimulator, Dataflow, MeshConfig
from repro.systolic.signals import SignalEvent
from repro.systolic.trace import TraceRecorder


def _traced_run(mesh):
    recorder = TraceRecorder.for_mac(0, 0)
    sim = CycleSimulator(mesh, probe=recorder)
    ones = np.ones((2, 2), dtype=np.int64)
    sim.matmul(ones, ones, Dataflow.OUTPUT_STATIONARY)
    return recorder


class TestVcdStructure:
    def test_header_sections(self, mesh4):
        vcd = _traced_run(mesh4).to_vcd()
        for section in ("$timescale", "$scope module mesh", "$enddefinitions"):
            assert section in vcd

    def test_one_var_per_signal(self, mesh4):
        vcd = _traced_run(mesh4).to_vcd()
        assert vcd.count("$var reg 32") == 4  # a_reg, b_reg, product, sum
        for signal in ("a_reg", "b_reg", "product", "sum"):
            assert f"mac_0_0_{signal}" in vcd

    def test_timestamps_monotonic(self, mesh4):
        vcd = _traced_run(mesh4).to_vcd()
        times = [
            int(line[1:])
            for line in vcd.splitlines()
            if line.startswith("#")
        ]
        assert times == sorted(times)
        assert times[0] == 0

    def test_values_are_32_bit_binary(self, mesh4):
        vcd = _traced_run(mesh4).to_vcd()
        value_lines = [
            line for line in vcd.splitlines() if line.startswith("b")
        ]
        assert value_lines
        for line in value_lines:
            bits, _, _ = line[1:].partition(" ")
            assert len(bits) == 32
            assert set(bits) <= {"0", "1"}

    def test_negative_values_twos_complement(self):
        recorder = TraceRecorder()
        recorder.observe(
            SignalEvent(cycle=0, row=0, col=0, signal="sum", value=-1)
        )
        vcd = recorder.to_vcd()
        assert "b" + "1" * 32 in vcd

    def test_identifier_uniqueness_many_signals(self):
        recorder = TraceRecorder()
        for row in range(10):
            for col in range(12):
                recorder.observe(
                    SignalEvent(cycle=0, row=row, col=col, signal="sum", value=1)
                )
        vcd = recorder.to_vcd()
        ids = [
            line.split()[3]
            for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(ids) == 120
        assert len(set(ids)) == 120

    def test_known_sum_values(self, mesh4):
        vcd = _traced_run(mesh4).to_vcd()
        # PE(0,0) accumulates 1 then 2: both binary patterns must appear.
        assert "b" + format(1, "032b") in vcd
        assert "b" + format(2, "032b") in vcd
