"""Unit tests for the input-stationary (IS) dataflow extension.

The paper names IS (Section II-D) without evaluating it; this repo
implements it as the transposed-WS execution. The key behavioural fact:
a stuck-at fault corrupts an output *row* — the dual of the WS column.
"""

import numpy as np
import pytest

from repro.core import Campaign, GemmWorkload, PatternClass, predict_pattern
from repro.gemmini import GemminiAccelerator
from repro.ops import TiledGemm, reference_gemm
from repro.systolic import (
    CycleSimulator,
    Dataflow,
    FunctionalSimulator,
    MeshConfig,
)

from tests.conftest import stuck_at

IS = Dataflow.INPUT_STATIONARY
ENGINES = [CycleSimulator, FunctionalSimulator]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestGolden:
    def test_matmul_matches_numpy(self, engine_cls, mesh4, rng):
        a = rng.integers(-128, 128, size=(4, 4))
        b = rng.integers(-128, 128, size=(4, 4))
        assert np.array_equal(engine_cls(mesh4).matmul(a, b, IS), a @ b)

    def test_n_is_the_stream_dimension(self, engine_cls, mesh4, rng):
        # Under IS the weight stream N is unbounded; M and K must fit.
        a = rng.integers(-10, 10, size=(3, 4))
        b = rng.integers(-10, 10, size=(4, 30))
        assert np.array_equal(engine_cls(mesh4).matmul(a, b, IS), a @ b)

    def test_constraints(self, engine_cls, mesh4):
        with pytest.raises(ValueError):
            engine_cls(mesh4).matmul(np.ones((5, 4)), np.ones((4, 2)), IS)
        with pytest.raises(ValueError):
            engine_cls(mesh4).matmul(np.ones((2, 5)), np.ones((5, 2)), IS)


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestRowPattern:
    def test_fault_corrupts_single_row(self, engine_cls, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        golden = engine_cls(mesh4).matmul(ones, ones, IS)
        faulty = engine_cls(mesh4, stuck_at(1, 2)).matmul(ones, ones, IS)
        diff = golden != faulty
        assert diff[2, :].all()
        assert not diff[[0, 1, 3], :].any()

    def test_mesh_row_position_is_irrelevant(self, engine_cls, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        outputs = [
            engine_cls(mesh4, stuck_at(row, 2)).matmul(ones, ones, IS)
            for row in range(4)
        ]
        for other in outputs[1:]:
            assert np.array_equal(outputs[0], other)

    def test_fault_outside_used_rows_is_masked(self, engine_cls, mesh4):
        a = np.ones((2, 4), dtype=np.int64)  # only mesh cols 0,1 live
        b = np.ones((4, 4), dtype=np.int64)
        golden = engine_cls(mesh4).matmul(a, b, IS)
        faulty = engine_cls(mesh4, stuck_at(0, 3)).matmul(a, b, IS)
        assert np.array_equal(golden, faulty)


class TestTiledAndStacked:
    def test_tiled_rows_at_mesh_stride(self, mesh4):
        ones = np.ones((12, 12), dtype=np.int64)
        golden = reference_gemm(ones, ones)
        faulty = TiledGemm(FunctionalSimulator(mesh4, stuck_at(0, 1)))(
            ones, ones, IS
        ).output
        rows = sorted(set(np.where(golden != faulty)[0]))
        assert rows == [1, 5, 9]

    def test_accelerator_supports_is(self, mesh4, rng):
        a = rng.integers(-128, 128, size=(10, 4))
        b = rng.integers(-128, 128, size=(4, 9))
        accel = GemminiAccelerator(mesh4)
        assert np.array_equal(accel.matmul(a, b, dataflow=IS),
                              reference_gemm(a, b))

    def test_accelerator_faulty_is_row_pattern(self, mesh4):
        ones = np.ones((8, 8), dtype=np.int64)
        accel = GemminiAccelerator(mesh4, injector=stuck_at(0, 2))
        out = accel.matmul(ones, ones, dataflow=IS)
        rows = sorted(set(np.where(reference_gemm(ones, ones) != out)[0]))
        assert rows == [2, 6]


class TestCampaignAndPredictor:
    def test_untiled_campaign_single_row(self, mesh4):
        result = Campaign(mesh4, GemmWorkload.square(4, IS)).run()
        assert result.dominant_class() is PatternClass.SINGLE_ROW
        assert result.is_single_class()
        assert result.mean_corrupted_cells() == 4.0

    def test_tiled_campaign_multi_tile_rows(self, mesh4):
        result = Campaign(mesh4, GemmWorkload.square(8, IS)).run()
        assert result.dominant_class() is PatternClass.SINGLE_ROW_MULTI_TILE

    def test_predictor_exact_for_is(self, mesh4):
        result = Campaign(mesh4, GemmWorkload.square(8, IS)).run()
        for experiment in result.experiments:
            predicted = predict_pattern(experiment.site, result.plan)
            assert predicted.pattern_class is experiment.pattern_class
            assert np.array_equal(
                predicted.support, experiment.pattern.gemm_mask()
            )
