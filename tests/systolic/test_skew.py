"""Unit tests for diagonal operand skewing."""

import numpy as np
import pytest

from repro.systolic.skew import SkewedFeeder


class TestStreamAxis1:
    """Lane i streams row i over time: value(i, t) = M[i, t - i]."""

    def setup_method(self):
        self.matrix = np.array([[1, 2, 3], [4, 5, 6]])
        self.feeder = SkewedFeeder(self.matrix, stream_axis=1)

    def test_lane_count(self):
        assert self.feeder.lanes == 2
        assert self.feeder.stream_length == 3

    def test_lane0_unskewed(self):
        assert [self.feeder.value(0, t) for t in range(3)] == [1, 2, 3]

    def test_lane1_delayed_one_cycle(self):
        assert self.feeder.value(1, 0) == 0
        assert [self.feeder.value(1, t) for t in range(1, 4)] == [4, 5, 6]

    def test_zero_outside_stream(self):
        assert self.feeder.value(0, 3) == 0
        assert self.feeder.value(1, 10) == 0

    def test_last_cycle(self):
        assert self.feeder.last_cycle() == (2 - 1) + (3 - 1)


class TestStreamAxis0:
    """Lane j streams column j over time: value(j, t) = M[t - j, j]."""

    def setup_method(self):
        self.matrix = np.array([[1, 2], [3, 4], [5, 6]])
        self.feeder = SkewedFeeder(self.matrix, stream_axis=0)

    def test_lane_count(self):
        assert self.feeder.lanes == 2
        assert self.feeder.stream_length == 3

    def test_columns_streamed(self):
        assert [self.feeder.value(0, t) for t in range(3)] == [1, 3, 5]
        assert [self.feeder.value(1, t) for t in range(1, 4)] == [2, 4, 6]

    def test_diagonal_alignment(self):
        # At cycle t, lane j carries element index t - j: a perfect diagonal.
        for t in range(4):
            for lane in range(2):
                expected = 0
                index = t - lane
                if 0 <= index < 3:
                    expected = self.matrix[index, lane]
                assert self.feeder.value(lane, t) == expected


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SkewedFeeder(np.arange(4), stream_axis=0)

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            SkewedFeeder(np.eye(2), stream_axis=2)

    def test_values_are_python_ints(self):
        feeder = SkewedFeeder(np.array([[7]], dtype=np.int32), stream_axis=0)
        assert type(feeder.value(0, 0)) is int
