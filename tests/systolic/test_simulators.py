"""Unit tests for the cycle and functional engines (plus fault behaviour).

The exhaustive randomised equivalence between the two engines lives in
``tests/property/test_engine_equivalence.py``; these tests pin down the
specific behaviours the paper depends on.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultSet,
    FaultSite,
    StuckAtFault,
    TransientBitFlip,
)
from repro.systolic import CycleSimulator, Dataflow, FunctionalSimulator, MeshConfig

from tests.conftest import stuck_at


ENGINES = [CycleSimulator, FunctionalSimulator]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestGolden:
    def test_matmul_matches_numpy(self, engine_cls, mesh4, rng):
        a = rng.integers(-128, 128, size=(4, 4))
        b = rng.integers(-128, 128, size=(4, 4))
        for dataflow in Dataflow:
            engine = engine_cls(mesh4)
            assert np.array_equal(engine.matmul(a, b, dataflow), a @ b)

    def test_identity(self, engine_cls, mesh4):
        eye = np.eye(4, dtype=np.int64)
        a = np.arange(16).reshape(4, 4)
        for dataflow in Dataflow:
            engine = engine_cls(mesh4)
            assert np.array_equal(engine.matmul(a, eye, dataflow), a)

    def test_cycles_accounted(self, engine_cls, mesh4):
        engine = engine_cls(mesh4)
        engine.matmul(np.ones((4, 4)), np.ones((4, 4)), Dataflow.OUTPUT_STATIONARY)
        assert engine.cycles_elapsed > 0
        assert engine.tiles_executed == 1

    def test_dimension_mismatch_rejected(self, engine_cls, mesh4):
        engine = engine_cls(mesh4)
        with pytest.raises(ValueError):
            engine.matmul(
                np.ones((2, 3)), np.ones((2, 2)), Dataflow.OUTPUT_STATIONARY
            )

    def test_oversized_tile_rejected(self, engine_cls, mesh4):
        engine = engine_cls(mesh4)
        with pytest.raises(ValueError):
            engine.matmul(
                np.ones((5, 4)), np.ones((4, 4)), Dataflow.OUTPUT_STATIONARY
            )
        with pytest.raises(ValueError):
            engine.matmul(
                np.ones((4, 5)), np.ones((5, 4)), Dataflow.WEIGHT_STATIONARY
            )


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestPaperFaultBehaviour:
    """The RQ1 signatures: OS corrupts one element, WS a whole column."""

    def test_os_single_element(self, engine_cls, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        golden = engine_cls(mesh4).matmul(ones, ones, Dataflow.OUTPUT_STATIONARY)
        faulty = engine_cls(mesh4, stuck_at(1, 2)).matmul(
            ones, ones, Dataflow.OUTPUT_STATIONARY
        )
        diff = golden != faulty
        assert diff.sum() == 1
        assert diff[1, 2]

    def test_ws_single_column(self, engine_cls, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        golden = engine_cls(mesh4).matmul(ones, ones, Dataflow.WEIGHT_STATIONARY)
        faulty = engine_cls(mesh4, stuck_at(1, 2)).matmul(
            ones, ones, Dataflow.WEIGHT_STATIONARY
        )
        diff = golden != faulty
        assert diff[:, 2].all()
        assert not diff[:, [0, 1, 3]].any()

    def test_ws_column_corrupted_even_from_zero_weight_row(
        self, engine_cls, mesh4
    ):
        """Position independence: a fault below the weight tile still hits."""
        a = np.ones((4, 2), dtype=np.int64)
        w = np.ones((2, 4), dtype=np.int64)  # rows 2,3 of mesh hold zeros
        golden = engine_cls(mesh4).matmul(a, w, Dataflow.WEIGHT_STATIONARY)
        faulty = engine_cls(mesh4, stuck_at(3, 1)).matmul(
            a, w, Dataflow.WEIGHT_STATIONARY
        )
        diff = golden != faulty
        assert diff[:, 1].all()

    def test_os_fault_outside_output_is_masked(self, engine_cls, mesh4):
        a = np.ones((2, 4), dtype=np.int64)
        b = np.ones((4, 2), dtype=np.int64)
        golden = engine_cls(mesh4).matmul(a, b, Dataflow.OUTPUT_STATIONARY)
        faulty = engine_cls(mesh4, stuck_at(3, 3)).matmul(
            a, b, Dataflow.OUTPUT_STATIONARY
        )
        assert np.array_equal(golden, faulty)

    def test_ws_fault_outside_used_columns_is_masked(self, engine_cls, mesh4):
        a = np.ones((4, 4), dtype=np.int64)
        w = np.ones((4, 2), dtype=np.int64)  # only columns 0,1 used
        golden = engine_cls(mesh4).matmul(a, w, Dataflow.WEIGHT_STATIONARY)
        faulty = engine_cls(mesh4, stuck_at(0, 3)).matmul(
            a, w, Dataflow.WEIGHT_STATIONARY
        )
        assert np.array_equal(golden, faulty)

    def test_stuck_at_0_masked_on_agreeing_data(self, engine_cls, mesh4):
        """Stuck-at-0 on a bit that is already 0 never manifests."""
        ones = np.ones((4, 4), dtype=np.int64)
        # All partial sums are <= 4, so bit 20 is always 0: stuck-at-0 hides.
        inj = stuck_at(2, 2, bit=20, value=0)
        for dataflow in Dataflow:
            golden = engine_cls(mesh4).matmul(ones, ones, dataflow)
            faulty = engine_cls(mesh4, inj).matmul(ones, ones, dataflow)
            assert np.array_equal(golden, faulty)


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestTransientFaults:
    def test_single_cycle_flip_corrupts_at_most_once_ws(self, engine_cls, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        site = FaultSite(0, 0, "sum", 10)
        inj = FaultInjector(FaultSet.of(TransientBitFlip(site=site, start_cycle=0)))
        golden = engine_cls(mesh4).matmul(ones, ones, Dataflow.WEIGHT_STATIONARY)
        faulty = engine_cls(mesh4, inj).matmul(ones, ones, Dataflow.WEIGHT_STATIONARY)
        diff = golden != faulty
        # Only the psum passing PE(0,0) at cycle 0 (output row 0, column 0).
        assert diff.sum() == 1
        assert diff[0, 0]

    def test_flip_outside_active_window_is_harmless(self, engine_cls, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        site = FaultSite(0, 0, "sum", 10)
        inj = FaultInjector(
            FaultSet.of(TransientBitFlip(site=site, start_cycle=10**6))
        )
        for dataflow in Dataflow:
            golden = engine_cls(mesh4).matmul(ones, ones, dataflow)
            faulty = engine_cls(mesh4, inj).matmul(ones, ones, dataflow)
            assert np.array_equal(golden, faulty)


class TestMultiStuckAt:
    def test_two_faults_two_columns_ws(self, mesh4):
        ones = np.ones((4, 4), dtype=np.int64)
        faults = FaultSet.of(
            StuckAtFault(site=FaultSite(0, 0, "sum", 20)),
            StuckAtFault(site=FaultSite(2, 3, "sum", 20)),
        )
        inj = FaultInjector(faults)
        golden = FunctionalSimulator(mesh4).matmul(
            ones, ones, Dataflow.WEIGHT_STATIONARY
        )
        faulty = FunctionalSimulator(mesh4, inj).matmul(
            ones, ones, Dataflow.WEIGHT_STATIONARY
        )
        diff = golden != faulty
        assert diff[:, 0].all() and diff[:, 3].all()
        assert not diff[:, [1, 2]].any()

    def test_msf_engines_agree(self, mesh4, rng):
        a = rng.integers(-128, 128, size=(4, 4))
        b = rng.integers(-128, 128, size=(4, 4))
        faults = FaultSet.of(
            StuckAtFault(site=FaultSite(0, 1, "sum", 5)),
            StuckAtFault(site=FaultSite(1, 1, "product", 3), stuck_value=0),
            StuckAtFault(site=FaultSite(3, 2, "a_reg", 7)),
        )
        inj = FaultInjector(faults)
        for dataflow in Dataflow:
            cycle = CycleSimulator(mesh4, inj).matmul(a, b, dataflow)
            fast = FunctionalSimulator(mesh4, inj).matmul(a, b, dataflow)
            assert np.array_equal(cycle, fast)
