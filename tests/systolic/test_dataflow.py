"""Unit tests for the OS/WS tile schedules."""

import numpy as np
import pytest

from repro.systolic.array import MeshConfig, SystolicArray
from repro.systolic.dataflow import (
    Dataflow,
    OutputStationarySchedule,
    WeightStationarySchedule,
    make_schedule,
)


def run_schedule(schedule, config: MeshConfig) -> np.ndarray:
    array = SystolicArray(config)
    schedule.setup(array)
    for cycle in range(schedule.total_cycles):
        schedule.step(array, cycle)
        schedule.harvest(array, cycle)
    return schedule.result(array)


class TestOutputStationary:
    def test_square_matmul(self, mesh4, rng):
        a = rng.integers(-10, 10, size=(4, 4))
        b = rng.integers(-10, 10, size=(4, 4))
        out = run_schedule(OutputStationarySchedule(a, b), mesh4)
        assert np.array_equal(out, a @ b)

    def test_rectangular_matmul(self, mesh4, rng):
        a = rng.integers(-10, 10, size=(3, 7))
        b = rng.integers(-10, 10, size=(7, 2))
        out = run_schedule(OutputStationarySchedule(a, b), mesh4)
        assert np.array_equal(out, a @ b)

    def test_long_reduction_stream(self, mesh4, rng):
        # K may exceed the mesh: it is the stream length under OS.
        a = rng.integers(-5, 5, size=(2, 40))
        b = rng.integers(-5, 5, size=(40, 3))
        out = run_schedule(OutputStationarySchedule(a, b), mesh4)
        assert np.array_equal(out, a @ b)

    def test_bias_preload(self, mesh4):
        a = np.ones((2, 2), dtype=np.int64)
        b = np.ones((2, 2), dtype=np.int64)
        bias = np.array([[10, 20], [30, 40]])
        out = run_schedule(OutputStationarySchedule(a, b, bias=bias), mesh4)
        assert np.array_equal(out, a @ b + bias)

    def test_oversized_tile_rejected(self, mesh4):
        schedule = OutputStationarySchedule(np.ones((5, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            schedule.setup(SystolicArray(mesh4))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OutputStationarySchedule(np.ones((2, 3)), np.ones((2, 2)))

    def test_total_cycles_formula(self):
        schedule = OutputStationarySchedule(np.ones((3, 5)), np.ones((5, 2)))
        assert schedule.total_cycles == (3 - 1) + (2 - 1) + 5


class TestWeightStationary:
    def test_square_matmul(self, mesh4, rng):
        a = rng.integers(-10, 10, size=(4, 4))
        w = rng.integers(-10, 10, size=(4, 4))
        out = run_schedule(WeightStationarySchedule(a, w), mesh4)
        assert np.array_equal(out, a @ w)

    def test_long_output_stream(self, mesh4, rng):
        # M may exceed the mesh: output rows stream through under WS.
        a = rng.integers(-5, 5, size=(30, 4))
        w = rng.integers(-5, 5, size=(4, 3))
        out = run_schedule(WeightStationarySchedule(a, w), mesh4)
        assert np.array_equal(out, a @ w)

    def test_small_weight_tile(self, mesh4, rng):
        # K < rows: psums pass through zero-weight mesh rows untouched.
        a = rng.integers(-5, 5, size=(6, 2))
        w = rng.integers(-5, 5, size=(2, 3))
        out = run_schedule(WeightStationarySchedule(a, w), mesh4)
        assert np.array_equal(out, a @ w)

    def test_bias_feed(self, mesh4):
        a = np.ones((3, 2), dtype=np.int64)
        w = np.ones((2, 2), dtype=np.int64)
        bias = np.arange(6).reshape(3, 2)
        out = run_schedule(WeightStationarySchedule(a, w, bias=bias), mesh4)
        assert np.array_equal(out, a @ w + bias)

    def test_oversized_weights_rejected(self, mesh4):
        schedule = WeightStationarySchedule(np.ones((2, 5)), np.ones((5, 2)))
        with pytest.raises(ValueError):
            schedule.setup(SystolicArray(mesh4))

    def test_total_cycles_requires_setup(self):
        schedule = WeightStationarySchedule(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            _ = schedule.total_cycles


class TestMakeSchedule:
    def test_dispatch(self):
        a, b = np.ones((2, 2)), np.ones((2, 2))
        assert isinstance(
            make_schedule(Dataflow.OUTPUT_STATIONARY, a, b),
            OutputStationarySchedule,
        )
        assert isinstance(
            make_schedule(Dataflow.WEIGHT_STATIONARY, a, b),
            WeightStationarySchedule,
        )

    def test_dataflow_str(self):
        assert str(Dataflow.OUTPUT_STATIONARY) == "OS"
        assert str(Dataflow.WEIGHT_STATIONARY) == "WS"
