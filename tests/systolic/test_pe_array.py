"""Unit tests for the processing element and the mesh wiring."""

import numpy as np
import pytest

from repro.systolic.array import MeshConfig, SystolicArray
from repro.systolic.mac import MacUnit
from repro.systolic.pe import ProcessingElement


class TestProcessingElement:
    def test_initial_state_is_zero(self):
        pe = ProcessingElement(MacUnit(0, 0))
        assert pe.a_out == 0 and pe.down_out == 0 and pe.acc == 0
        assert pe.weight == 0

    def test_os_step_accumulates_after_commit(self):
        pe = ProcessingElement(MacUnit(0, 0))
        pe.stage_output_stationary(2, 3, cycle=0)
        assert pe.acc == 0  # staged, not committed
        pe.commit()
        assert pe.acc == 6
        pe.stage_output_stationary(4, 5, cycle=1)
        pe.commit()
        assert pe.acc == 26

    def test_os_step_forwards_operands(self):
        pe = ProcessingElement(MacUnit(0, 0))
        pe.stage_output_stationary(7, 9, cycle=0)
        pe.commit()
        assert pe.a_out == 7
        assert pe.down_out == 9

    def test_ws_step_forwards_partial_sum(self):
        pe = ProcessingElement(MacUnit(0, 0))
        pe.preload_weight(4)
        pe.stage_weight_stationary(a_in=3, psum_in=10, cycle=0)
        pe.commit()
        assert pe.down_out == 22  # 10 + 3*4
        assert pe.a_out == 3

    def test_ws_preserves_accumulator(self):
        pe = ProcessingElement(MacUnit(0, 0))
        pe.preload_accumulator(42)
        pe.stage_weight_stationary(1, 0, cycle=0)
        pe.commit()
        assert pe.acc == 42

    def test_weight_preload_wraps_to_int8(self):
        pe = ProcessingElement(MacUnit(0, 0))
        pe.preload_weight(130)
        assert pe.weight == -126

    def test_reset_clears_everything(self):
        pe = ProcessingElement(MacUnit(0, 0))
        pe.preload_weight(5)
        pe.stage_output_stationary(2, 2, cycle=0)
        pe.commit()
        pe.reset_state()
        assert pe.acc == 0 and pe.weight == 0 and pe.a_out == 0


class TestMeshConfig:
    def test_paper_config(self):
        cfg = MeshConfig.paper()
        assert (cfg.rows, cfg.cols) == (16, 16)
        assert cfg.num_macs == 256
        assert cfg.input_dtype.width == 8
        assert cfg.acc_dtype.width == 32

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            MeshConfig(rows=0, cols=4)


class TestSystolicArray:
    def test_pe_grid_shape(self, mesh_rect):
        array = SystolicArray(mesh_rect)
        assert array.pe(2, 4) is not None
        with pytest.raises(IndexError):
            array.pe(3, 0)

    def test_preload_weights_pads_with_zero(self, mesh4):
        array = SystolicArray(mesh4)
        array.preload_weights(np.array([[1, 2], [3, 4]]))
        assert array.pe(0, 0).weight == 1
        assert array.pe(1, 1).weight == 4
        assert array.pe(2, 2).weight == 0
        assert array.pe(3, 3).weight == 0

    def test_preload_oversized_weights_rejected(self, mesh4):
        array = SystolicArray(mesh4)
        with pytest.raises(ValueError):
            array.preload_weights(np.ones((5, 2)))

    def test_preload_accumulators(self, mesh4):
        array = SystolicArray(mesh4)
        array.preload_accumulators(np.array([[5, 6]]))
        assert array.pe(0, 0).acc == 5
        assert array.pe(0, 1).acc == 6

    def test_os_step_wavefront_propagation(self, mesh4):
        """A value fed at the west edge takes one cycle per hop eastwards."""
        array = SystolicArray(mesh4)
        feeds = [9, 0, 0, 0]
        zeros = [0, 0, 0, 0]
        array.step_output_stationary(feeds, zeros, cycle=0)
        assert array.pe(0, 0).a_out == 9
        assert array.pe(0, 1).a_out == 0
        array.step_output_stationary(zeros, zeros, cycle=1)
        assert array.pe(0, 1).a_out == 9
        assert array.pe(0, 2).a_out == 0

    def test_ws_psum_flows_south(self, mesh4):
        array = SystolicArray(mesh4)
        array.preload_weights(np.zeros((4, 4)))
        array.step_weight_stationary([0] * 4, [11, 0, 0, 0], cycle=0)
        assert array.pe(0, 0).down_out == 11
        array.step_weight_stationary([0] * 4, [0] * 4, cycle=1)
        assert array.pe(1, 0).down_out == 11

    def test_read_accumulators_subblock(self, mesh4):
        array = SystolicArray(mesh4)
        array.preload_accumulators(np.arange(16).reshape(4, 4))
        block = array.read_accumulators(2, 3)
        assert block.shape == (2, 3)
        assert block[1, 2] == 6

    def test_bottom_outputs_length(self, mesh_rect):
        array = SystolicArray(mesh_rect)
        assert len(array.bottom_outputs(4)) == 4
