"""Unit tests for fixed-width two's-complement arithmetic."""

import numpy as np
import pytest

from repro.systolic.datatypes import (
    INT8,
    INT16,
    INT32,
    UINT8,
    IntType,
    flip_bit_array,
    force_bit_array,
    wrap_array,
)


class TestRanges:
    def test_int8_range(self):
        assert INT8.min_value == -128
        assert INT8.max_value == 127

    def test_int32_range(self):
        assert INT32.min_value == -(2**31)
        assert INT32.max_value == 2**31 - 1

    def test_uint8_range(self):
        assert UINT8.min_value == 0
        assert UINT8.max_value == 255

    def test_mask(self):
        assert INT8.mask == 0xFF
        assert INT32.mask == 0xFFFFFFFF

    def test_contains(self):
        assert INT8.contains(127)
        assert INT8.contains(-128)
        assert not INT8.contains(128)
        assert not INT8.contains(-129)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(width=0, signed=True, name="BAD")


class TestWrap:
    def test_identity_in_range(self):
        for v in (-128, -1, 0, 1, 127):
            assert INT8.wrap(v) == v

    def test_positive_overflow_wraps_negative(self):
        assert INT8.wrap(128) == -128
        assert INT8.wrap(129) == -127
        assert INT32.wrap(2**31) == -(2**31)

    def test_negative_overflow_wraps_positive(self):
        assert INT8.wrap(-129) == 127
        assert INT32.wrap(-(2**31) - 1) == 2**31 - 1

    def test_unsigned_wrap(self):
        assert UINT8.wrap(256) == 0
        assert UINT8.wrap(-1) == 255

    def test_wrap_is_mod_2w(self):
        for v in range(-600, 600, 7):
            assert INT8.wrap(v) % 256 == v % 256

    def test_clamp_saturates(self):
        assert INT8.clamp(500) == 127
        assert INT8.clamp(-500) == -128
        assert INT8.clamp(5) == 5

    def test_unsigned_roundtrip(self):
        for v in (-128, -1, 0, 1, 127):
            assert INT8.from_unsigned(INT8.to_unsigned(v)) == v


class TestBits:
    def test_get_bit(self):
        assert INT8.get_bit(0b0101, 0) == 1
        assert INT8.get_bit(0b0101, 1) == 0
        assert INT8.get_bit(-1, 7) == 1  # sign bit of -1 is set

    def test_force_bit_set(self):
        assert INT32.force_bit(0, 3, 1) == 8
        assert INT32.force_bit(8, 3, 1) == 8  # idempotent

    def test_force_bit_clear(self):
        assert INT32.force_bit(8, 3, 0) == 0
        assert INT32.force_bit(0, 3, 0) == 0

    def test_force_sign_bit_negates(self):
        assert INT8.force_bit(0, 7, 1) == -128
        assert INT8.force_bit(-128, 7, 0) == 0

    def test_force_is_idempotent(self):
        for v in range(-128, 128):
            once = INT8.force_bit(v, 5, 1)
            assert INT8.force_bit(once, 5, 1) == once

    def test_flip_bit_is_involution(self):
        for v in (-100, -1, 0, 1, 42, 127):
            assert INT8.flip_bit(INT8.flip_bit(v, 4), 4) == v

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            INT8.get_bit(0, 8)
        with pytest.raises(ValueError):
            INT32.force_bit(0, 32, 1)
        with pytest.raises(ValueError):
            INT8.flip_bit(0, -1)

    def test_bad_stuck_value_rejected(self):
        with pytest.raises(ValueError):
            INT8.force_bit(0, 0, 2)

    def test_bit_string(self):
        assert INT8.bit_string(5) == "00000101"
        assert INT8.bit_string(-1) == "11111111"


class TestAlu:
    def test_add_wraps(self):
        assert INT8.add(127, 1) == -128

    def test_mul_wraps(self):
        assert INT8.mul(64, 2) == -128
        assert INT16.mul(-128, -128) == 16384  # int8 product fits int16

    def test_int8_product_fits_int32(self):
        assert INT32.mul(-128, -128) == 16384


class TestNumpyDtype:
    def test_dtypes(self):
        assert INT8.numpy_dtype == np.dtype(np.int8)
        assert INT16.numpy_dtype == np.dtype(np.int16)
        assert INT32.numpy_dtype == np.dtype(np.int32)
        assert UINT8.numpy_dtype == np.dtype(np.uint8)


class TestVectorised:
    def test_wrap_array_matches_scalar(self):
        values = np.arange(-300, 300, 13)
        wrapped = wrap_array(values, INT8)
        for v, w in zip(values.tolist(), wrapped.tolist()):
            assert w == INT8.wrap(v)

    def test_wrap_array_returns_int64(self):
        assert wrap_array(np.array([1, 2]), INT32).dtype == np.int64

    def test_force_bit_array_matches_scalar(self):
        values = np.arange(-50, 50)
        for stuck in (0, 1):
            forced = force_bit_array(values, 4, stuck, INT8)
            for v, f in zip(values.tolist(), forced.tolist()):
                assert f == INT8.force_bit(v, 4, stuck)

    def test_flip_bit_array_matches_scalar(self):
        values = np.arange(-50, 50)
        flipped = flip_bit_array(values, 6, INT8)
        for v, f in zip(values.tolist(), flipped.tolist()):
            assert f == INT8.flip_bit(v, 6)

    def test_force_bit_array_validates(self):
        with pytest.raises(ValueError):
            force_bit_array(np.array([0]), 8, 1, INT8)
        with pytest.raises(ValueError):
            force_bit_array(np.array([0]), 0, 5, INT8)

    def test_high_bit_force_int32(self):
        forced = force_bit_array(np.array([0]), 31, 1, INT32)
        assert forced[0] == -(2**31)
