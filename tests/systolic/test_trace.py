"""Unit tests for signal probing and the trace recorder."""

import numpy as np

from repro.systolic import CycleSimulator, Dataflow, MeshConfig
from repro.systolic.signals import CountingProbe, RecordingProbe, SignalEvent
from repro.systolic.trace import TraceRecorder


class TestCountingProbe:
    def test_counts_all_signal_drives(self, mesh4):
        probe = CountingProbe()
        sim = CycleSimulator(mesh4, probe=probe)
        sim.matmul(np.ones((4, 4)), np.ones((4, 4)), Dataflow.OUTPUT_STATIONARY)
        # 16 PEs * 4 signals * total_cycles drives.
        expected_cycles = (4 - 1) + (4 - 1) + 4
        assert probe.count == 16 * 4 * expected_cycles


class TestRecordingProbe:
    def test_filters_compose(self, mesh4):
        probe = RecordingProbe(mac=(1, 1), signal="sum")
        sim = CycleSimulator(mesh4, probe=probe)
        sim.matmul(np.ones((4, 4)), np.ones((4, 4)), Dataflow.WEIGHT_STATIONARY)
        assert probe.events
        assert all(e.signal == "sum" for e in probe.events)
        assert all((e.row, e.col) == (1, 1) for e in probe.events)


class TestTraceRecorder:
    def _run(self, recorder, mesh):
        sim = CycleSimulator(mesh, probe=recorder)
        sim.matmul(
            np.ones((2, 2), dtype=np.int64),
            np.ones((2, 2), dtype=np.int64),
            Dataflow.OUTPUT_STATIONARY,
        )

    def test_series_recorded_in_order(self, mesh4):
        recorder = TraceRecorder.for_mac(0, 0)
        self._run(recorder, mesh4)
        series = recorder.series(0, 0, "sum")
        cycles = [cycle for cycle, _ in series]
        assert cycles == sorted(cycles)
        # PE(0,0) accumulates 1*1 at cycles 0 and 1: sums 1 then 2.
        assert series[0][1] == 1
        assert series[1][1] == 2

    def test_value_at(self, mesh4):
        recorder = TraceRecorder.for_mac(0, 0)
        self._run(recorder, mesh4)
        assert recorder.value_at(0, 0, "sum", 0) == 1
        assert recorder.value_at(0, 0, "sum", 10**6) is None

    def test_render_contains_all_signals(self, mesh4):
        recorder = TraceRecorder.for_mac(1, 1)
        self._run(recorder, mesh4)
        text = recorder.render()
        for signal in ("a_reg", "b_reg", "product", "sum"):
            assert f"MAC(1,1).{signal}" in text

    def test_render_alignment_uses_dots_for_gaps(self):
        recorder = TraceRecorder()
        recorder.observe(SignalEvent(cycle=2, row=0, col=0, signal="sum", value=5))
        text = recorder.render()
        row = text.splitlines()[0]
        _, _, cells = row.partition("|")
        assert cells.split() == [".", ".", "5"]  # cycles 0,1 undriven

    def test_signal_filter(self, mesh4):
        recorder = TraceRecorder(signals=frozenset({"sum"}))
        self._run(recorder, mesh4)
        assert recorder.series(0, 0, "sum")
        assert recorder.series(0, 0, "product") == []
