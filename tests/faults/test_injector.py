"""Unit tests for the fault-injection overlay."""

import pytest

from repro.faults.injector import NO_FAULTS, FaultInjector
from repro.faults.model import FaultSet, StuckAtFault, TransientBitFlip
from repro.faults.sites import SIGNAL_PRODUCT, SIGNAL_SUM, FaultSite


class TestGolden:
    def test_no_faults_is_golden(self):
        assert NO_FAULTS.is_golden
        assert FaultInjector().is_golden

    def test_golden_perturb_is_identity(self):
        assert NO_FAULTS.perturb(0, 0, SIGNAL_SUM, 12345, cycle=7) == 12345

    def test_golden_touches_nothing(self):
        assert not NO_FAULTS.touches_mac(0, 0)


class TestSingleStuckAt:
    def test_factory(self):
        site = FaultSite(2, 3, SIGNAL_SUM, 5)
        inj = FaultInjector.single_stuck_at(site, stuck_value=1)
        assert not inj.is_golden
        assert inj.touches_mac(2, 3)
        assert not inj.touches_mac(3, 2)

    def test_perturb_targets_only_its_site(self):
        site = FaultSite(1, 1, SIGNAL_SUM, 0)
        inj = FaultInjector.single_stuck_at(site, stuck_value=1)
        assert inj.perturb(1, 1, SIGNAL_SUM, 0, 0) == 1
        # other MAC, other signal: untouched
        assert inj.perturb(1, 2, SIGNAL_SUM, 0, 0) == 0
        assert inj.perturb(1, 1, SIGNAL_PRODUCT, 0, 0) == 0

    def test_faults_at(self):
        site = FaultSite(0, 0, SIGNAL_SUM, 3)
        inj = FaultInjector.single_stuck_at(site)
        assert len(inj.faults_at(0, 0, SIGNAL_SUM)) == 1
        assert inj.faults_at(0, 0, SIGNAL_PRODUCT) == ()


class TestMultipleFaults:
    def test_two_faults_same_signal_apply_in_order(self):
        site = FaultSite(0, 0, SIGNAL_SUM, 2)
        set_then_clear = FaultSet.of(
            StuckAtFault(site=site, stuck_value=1),
            StuckAtFault(site=site, stuck_value=0),
        )
        inj = FaultInjector(set_then_clear)
        # Last writer wins: bit forced to 1 then cleared to 0.
        assert inj.perturb(0, 0, SIGNAL_SUM, 0, 0) == 0

    def test_faults_on_different_macs(self):
        fs = FaultSet.of(
            StuckAtFault(site=FaultSite(0, 0, SIGNAL_SUM, 0)),
            StuckAtFault(site=FaultSite(1, 1, SIGNAL_SUM, 1)),
        )
        inj = FaultInjector(fs)
        assert inj.perturb(0, 0, SIGNAL_SUM, 0, 0) == 1
        assert inj.perturb(1, 1, SIGNAL_SUM, 0, 0) == 2
        assert inj.perturb(2, 2, SIGNAL_SUM, 0, 0) == 0

    def test_accepts_plain_iterable(self):
        inj = FaultInjector(
            [StuckAtFault(site=FaultSite(0, 1, SIGNAL_SUM, 4))]
        )
        assert inj.touches_mac(0, 1)
        assert len(inj.fault_set) == 1


class TestTransientThroughInjector:
    def test_transient_respects_cycle(self):
        site = FaultSite(0, 0, SIGNAL_SUM, 0)
        inj = FaultInjector(
            FaultSet.of(TransientBitFlip(site=site, start_cycle=3))
        )
        assert inj.perturb(0, 0, SIGNAL_SUM, 0, cycle=3) == 1
        assert inj.perturb(0, 0, SIGNAL_SUM, 0, cycle=2) == 0
        assert inj.perturb(0, 0, SIGNAL_SUM, 0, cycle=4) == 0
