"""Unit tests for the bridging (wired-AND/OR) fault model."""

import numpy as np
import pytest

from repro.faults import BridgingFault, FaultInjector, FaultSet, FaultSite
from repro.systolic import CycleSimulator, Dataflow, FunctionalSimulator, MeshConfig
from repro.systolic.datatypes import INT32

SITE = FaultSite(1, 2, "sum", 4)


class TestSemantics:
    def test_wired_and(self):
        fault = BridgingFault(site=SITE, other_bit=7, mode="and")
        # bit4=1, bit7=0 -> both become 0.
        assert fault.apply(16, INT32, 0) == 0
        # both set: unchanged.
        assert fault.apply(16 + 128, INT32, 0) == 16 + 128
        # neither set: unchanged.
        assert fault.apply(3, INT32, 0) == 3

    def test_wired_or(self):
        fault = BridgingFault(site=SITE, other_bit=7, mode="or")
        # bit4=1, bit7=0 -> both become 1.
        assert fault.apply(16, INT32, 0) == 16 + 128
        assert fault.apply(128, INT32, 0) == 16 + 128
        assert fault.apply(0, INT32, 0) == 0

    def test_permanent(self):
        fault = BridgingFault(site=SITE, other_bit=7)
        assert all(fault.is_active(cycle) for cycle in (0, 1, 10**6))

    def test_validation(self):
        with pytest.raises(ValueError):
            BridgingFault(site=SITE, other_bit=4)  # same wire
        with pytest.raises(ValueError):
            BridgingFault(site=SITE, other_bit=32)  # out of bus
        with pytest.raises(ValueError):
            BridgingFault(site=SITE, other_bit=7, mode="xor")

    def test_describe(self):
        text = BridgingFault(site=SITE, other_bit=7, mode="or").describe()
        assert "wired-OR" in text and "bits 4 and 7" in text


class TestInSimulation:
    @pytest.mark.parametrize("mode", ["and", "or"])
    def test_engines_agree(self, mesh4, rng, mode):
        a = rng.integers(-128, 128, size=(4, 4))
        b = rng.integers(-128, 128, size=(4, 4))
        fault = BridgingFault(
            site=FaultSite(1, 1, "sum", 3), other_bit=9, mode=mode
        )
        injector = FaultInjector(FaultSet.of(fault))
        for dataflow in Dataflow:
            cycle = CycleSimulator(mesh4, injector).matmul(a, b, dataflow)
            fast = FunctionalSimulator(mesh4, injector).matmul(a, b, dataflow)
            assert np.array_equal(cycle, fast)

    def test_bridge_stays_within_stuck_at_support(self, mesh4):
        """The paper's McCluskey-citation claim: non-stuck-at defects still
        manifest within the stuck-at-derived pattern geometry. (Data
        masking may shrink the observation inside the support — e.g. a
        column reduced to one cell — so containment, not class equality,
        is the right statement.)"""
        from repro.core.fault_patterns import extract_pattern
        from repro.core.predictor import predict_pattern
        from repro.ops.gemm import TiledGemm
        from repro.ops.reference import reference_gemm

        rng = np.random.default_rng(5)
        a = rng.integers(-128, 128, size=(4, 4))
        b = rng.integers(-128, 128, size=(4, 4))
        golden = reference_gemm(a, b)
        for dataflow in (
            Dataflow.WEIGHT_STATIONARY,
            Dataflow.OUTPUT_STATIONARY,
        ):
            for row in range(4):
                for col in range(4):
                    site = FaultSite(row, col, "sum", 5)
                    fault = BridgingFault(site=site, other_bit=17, mode="or")
                    injector = FaultInjector(FaultSet.of(fault))
                    result = TiledGemm(FunctionalSimulator(mesh4, injector))(
                        a, b, dataflow
                    )
                    pattern = extract_pattern(
                        golden, result.output, plan=result.plan
                    )
                    support = predict_pattern(site, result.plan).support
                    # Every corrupted cell lies in the stuck-at support.
                    assert np.all(support | ~pattern.mask), (dataflow, row, col)
