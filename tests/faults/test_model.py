"""Unit tests for the fault descriptors (stuck-at, transient, MSF)."""

import pytest

from repro.faults.model import FaultSet, StuckAtFault, TransientBitFlip
from repro.faults.sites import SIGNAL_SUM, FaultSite
from repro.systolic.datatypes import INT32

SITE = FaultSite(row=1, col=2, signal=SIGNAL_SUM, bit=4)


class TestStuckAt:
    def test_stuck_at_1_sets_bit(self):
        fault = StuckAtFault(site=SITE, stuck_value=1)
        assert fault.apply(0, INT32, cycle=0) == 16

    def test_stuck_at_0_clears_bit(self):
        fault = StuckAtFault(site=SITE, stuck_value=0)
        assert fault.apply(16, INT32, cycle=0) == 0

    def test_permanent_across_cycles(self):
        fault = StuckAtFault(site=SITE, stuck_value=1)
        for cycle in (0, 1, 17, 10**6):
            assert fault.is_active(cycle)
            assert fault.apply(0, INT32, cycle) == 16

    def test_no_effect_when_bit_agrees(self):
        fault = StuckAtFault(site=SITE, stuck_value=1)
        assert fault.apply(16, INT32, 0) == 16
        fault0 = StuckAtFault(site=SITE, stuck_value=0)
        assert fault0.apply(3, INT32, 0) == 3  # bit 4 already 0

    def test_invalid_stuck_value(self):
        with pytest.raises(ValueError):
            StuckAtFault(site=SITE, stuck_value=2)

    def test_describe_mentions_location(self):
        text = StuckAtFault(site=SITE, stuck_value=1).describe()
        assert "stuck-at-1" in text
        assert "MAC(1,2)" in text
        assert "sum" in text


class TestTransient:
    def test_single_cycle_flip(self):
        fault = TransientBitFlip(site=SITE, start_cycle=5)
        assert fault.apply(0, INT32, 5) == 16
        assert fault.apply(0, INT32, 4) == 0
        assert fault.apply(0, INT32, 6) == 0

    def test_window_flip(self):
        fault = TransientBitFlip(site=SITE, start_cycle=2, end_cycle=4)
        active = [cycle for cycle in range(7) if fault.is_active(cycle)]
        assert active == [2, 3, 4]

    def test_flip_inverts_rather_than_forces(self):
        fault = TransientBitFlip(site=SITE, start_cycle=0, end_cycle=10)
        assert fault.apply(16, INT32, 0) == 0
        assert fault.apply(0, INT32, 0) == 16

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            TransientBitFlip(site=SITE, start_cycle=-1)
        with pytest.raises(ValueError):
            TransientBitFlip(site=SITE, start_cycle=5, end_cycle=4)

    def test_describe(self):
        text = TransientBitFlip(site=SITE, start_cycle=3).describe()
        assert "bit-flip" in text and "[3, 3]" in text


class TestFaultSet:
    def test_empty_set_is_falsy(self):
        assert not FaultSet()
        assert len(FaultSet()) == 0
        assert FaultSet().describe() == "no faults (golden run)"

    def test_of_and_iteration(self):
        f1 = StuckAtFault(site=SITE, stuck_value=1)
        f2 = StuckAtFault(site=FaultSite(0, 0, SIGNAL_SUM, 0), stuck_value=0)
        fs = FaultSet.of(f1, f2)
        assert len(fs) == 2
        assert list(fs) == [f1, f2]

    def test_sites_property(self):
        f1 = StuckAtFault(site=SITE, stuck_value=1)
        fs = FaultSet.of(f1)
        assert fs.sites == (SITE,)

    def test_at_site(self):
        f1 = StuckAtFault(site=SITE, stuck_value=1)
        other = FaultSite(3, 3, SIGNAL_SUM, 1)
        fs = FaultSet.of(f1)
        assert fs.at_site(SITE) == (f1,)
        assert fs.at_site(other) == ()

    def test_from_iterable(self):
        faults = (StuckAtFault(site=SITE.with_bit(b)) for b in range(3))
        assert len(FaultSet.from_iterable(faults)) == 3

    def test_describe_joins_members(self):
        fs = FaultSet.of(
            StuckAtFault(site=SITE, stuck_value=1),
            StuckAtFault(site=SITE.with_bit(9), stuck_value=0),
        )
        text = fs.describe()
        assert "stuck-at-1" in text and "stuck-at-0" in text
