"""Unit tests for fault-site naming and enumeration."""

import pytest

from repro.faults.sites import (
    MAC_SIGNALS,
    PAPER_FAULT_SIGNAL,
    SIGNAL_A_REG,
    SIGNAL_B_REG,
    SIGNAL_PRODUCT,
    SIGNAL_SUM,
    FaultSite,
    enumerate_mac_sites,
    enumerate_sites,
    signal_dtype,
)
from repro.systolic.datatypes import INT8, INT32


class TestSignals:
    def test_paper_signal_is_adder_output(self):
        assert PAPER_FAULT_SIGNAL == SIGNAL_SUM

    def test_operand_signals_are_int8(self):
        assert signal_dtype(SIGNAL_A_REG) is INT8
        assert signal_dtype(SIGNAL_B_REG) is INT8

    def test_datapath_signals_are_int32(self):
        assert signal_dtype(SIGNAL_PRODUCT) is INT32
        assert signal_dtype(SIGNAL_SUM) is INT32

    def test_unknown_signal_rejected(self):
        with pytest.raises(KeyError):
            signal_dtype("not_a_signal")

    def test_all_signals_have_dtypes(self):
        for signal in MAC_SIGNALS:
            assert signal_dtype(signal).width in (8, 32)


class TestFaultSite:
    def test_defaults_to_paper_signal(self):
        site = FaultSite(row=1, col=2)
        assert site.signal == SIGNAL_SUM
        assert site.bit == 0

    def test_dtype_property(self):
        assert FaultSite(0, 0, SIGNAL_SUM, 31).dtype is INT32
        assert FaultSite(0, 0, SIGNAL_A_REG, 7).dtype is INT8

    def test_negative_coords_rejected(self):
        with pytest.raises(ValueError):
            FaultSite(row=-1, col=0)
        with pytest.raises(ValueError):
            FaultSite(row=0, col=-2)

    def test_invalid_signal_rejected(self):
        with pytest.raises(KeyError):
            FaultSite(row=0, col=0, signal="bogus")

    def test_bit_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSite(row=0, col=0, signal=SIGNAL_A_REG, bit=8)
        with pytest.raises(ValueError):
            FaultSite(row=0, col=0, signal=SIGNAL_SUM, bit=32)

    def test_with_bit(self):
        site = FaultSite(2, 3, SIGNAL_SUM, 5)
        moved = site.with_bit(9)
        assert moved.bit == 9
        assert (moved.row, moved.col, moved.signal) == (2, 3, SIGNAL_SUM)

    def test_sites_are_hashable_and_ordered(self):
        a = FaultSite(0, 0, SIGNAL_SUM, 0)
        b = FaultSite(0, 1, SIGNAL_SUM, 0)
        assert a < b
        assert len({a, b, FaultSite(0, 0, SIGNAL_SUM, 0)}) == 2

    def test_str(self):
        assert str(FaultSite(3, 4, SIGNAL_SUM, 7)) == "MAC(3,4).sum[7]"


class TestEnumeration:
    def test_mac_sites_default_signal(self):
        sites = list(enumerate_mac_sites(1, 2))
        assert len(sites) == 32  # every bit of the 32-bit adder output
        assert all(s.signal == SIGNAL_SUM for s in sites)
        assert [s.bit for s in sites] == list(range(32))

    def test_mac_sites_custom_bits(self):
        sites = list(enumerate_mac_sites(0, 0, bits=[3, 7]))
        assert [s.bit for s in sites] == [3, 7]

    def test_mac_sites_all_signals(self):
        sites = list(enumerate_mac_sites(0, 0, signals=MAC_SIGNALS))
        assert len(sites) == 8 + 8 + 32 + 32

    def test_mesh_enumeration_cardinality(self):
        # Paper: 16x16 mesh * 32 adder-output bits = 8192 sites.
        sites = list(enumerate_sites(16, 16))
        assert len(sites) == 8192

    def test_mesh_enumeration_covers_every_mac(self):
        sites = list(enumerate_sites(2, 3, bits=[0]))
        assert {(s.row, s.col) for s in sites} == {
            (r, c) for r in range(2) for c in range(3)
        }

    def test_bad_mesh_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_sites(0, 4))


class TestContractEdgeCases:
    """Runtime tests of the signal contract the static linter also enforces."""

    def test_signal_dtype_error_names_the_registry(self):
        with pytest.raises(KeyError) as excinfo:
            signal_dtype("accumulator")
        message = str(excinfo.value)
        for signal in MAC_SIGNALS:
            assert signal in message

    def test_enumerate_mac_sites_unknown_signal(self):
        with pytest.raises(KeyError):
            list(enumerate_mac_sites(0, 0, signals=("not_a_signal",)))

    def test_enumerate_sites_unknown_signal(self):
        with pytest.raises(KeyError):
            list(enumerate_sites(2, 2, signals=("bogus",)))

    def test_zero_size_mesh_rejected_both_axes(self):
        with pytest.raises(ValueError):
            list(enumerate_sites(4, 0))
        with pytest.raises(ValueError):
            list(enumerate_sites(0, 0))

    def test_negative_mesh_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_sites(-1, 4))
        with pytest.raises(ValueError):
            list(enumerate_sites(4, -2))

    def test_empty_signal_selection_yields_nothing(self):
        assert list(enumerate_sites(2, 2, signals=())) == []
        assert list(enumerate_mac_sites(0, 0, signals=())) == []

    def test_empty_bit_selection_yields_nothing(self):
        assert list(enumerate_mac_sites(0, 0, bits=[])) == []
        assert list(enumerate_sites(2, 2, bits=[])) == []

    def test_out_of_range_bit_selection_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_mac_sites(0, 0, signals=(SIGNAL_A_REG,), bits=[8]))

    def test_minimal_mesh(self):
        sites = list(enumerate_sites(1, 1))
        assert len(sites) == 32
        assert all((s.row, s.col) == (0, 0) for s in sites)

    def test_dtype_identity_matches_registry(self):
        # The linter keeps _SIGNAL_DTYPES and MAC_SIGNALS aligned at the AST
        # level; this pins the runtime behaviour to the same contract.
        for signal in MAC_SIGNALS:
            for site in enumerate_mac_sites(0, 0, signals=(signal,), bits=[0]):
                assert site.dtype is signal_dtype(signal)
