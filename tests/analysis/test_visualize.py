"""Unit tests for ASCII fault-map rendering."""

import numpy as np
import pytest

from repro.analysis.visualize import (
    render_conv_pattern,
    render_gemm_pattern,
    render_mac_liveness,
    render_mask,
)
from repro.core.campaign import Campaign, ConvWorkload, GemmWorkload
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


class TestRenderMask:
    def test_basic_glyphs(self):
        mask = np.array([[True, False], [False, True]])
        assert render_mask(mask) == "#.\n.#"

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            render_mask(np.zeros(4, dtype=bool))


class TestRenderGemm:
    def test_untiled_column(self):
        result = Campaign(
            MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
            sites=[(0, 2)],
        ).run()
        text = render_gemm_pattern(result.experiments[0].pattern)
        assert text.splitlines() == ["..#."] * 4

    def test_tile_rules_drawn(self):
        result = Campaign(
            MESH, GemmWorkload.square(8, Dataflow.OUTPUT_STATIONARY),
            sites=[(1, 1)],
        ).run()
        text = render_gemm_pattern(result.experiments[0].pattern)
        lines = text.splitlines()
        assert "----" in lines[4]  # horizontal tile rule after 4 rows
        assert all("|" in line for line in lines if "-" not in line)
        # Corrupted local element appears in all four tiles.
        assert text.count("#") == 4

    def test_without_plan_falls_back_to_plain(self):
        from repro.core.fault_patterns import extract_pattern

        pattern = extract_pattern(np.zeros((2, 2)), np.eye(2))
        assert render_gemm_pattern(pattern) == "#.\n.#"


class TestRenderMacLiveness:
    def test_conv_lights_up_live_columns_only(self):
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(6, (3, 3, 2, 3))
        ).run()
        lines = render_mac_liveness(result).splitlines()
        assert lines == ["###."] * 4  # K=3 of 4 columns live

    def test_partial_sweep_leaves_blanks(self):
        result = Campaign(
            MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
            sites=[(0, 0), (1, 1)],
        ).run()
        lines = render_mac_liveness(result).splitlines()
        assert lines[0][0] == "#"
        assert lines[1][1] == "#"
        assert lines[2][2] == " "


class TestRenderConv:
    def test_channel_blocks(self):
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(6, (3, 3, 2, 3)), sites=[(0, 1)]
        ).run()
        text = render_conv_pattern(result.experiments[0].pattern)
        assert "channel 0" in text
        assert "channel 1  <-- corrupted" in text
        assert "channel 2" in text

    def test_requires_conv_pattern(self):
        result = Campaign(
            MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY),
            sites=[(0, 0)],
        ).run()
        with pytest.raises(ValueError):
            render_conv_pattern(result.experiments[0].pattern)

    def test_batch_bounds_checked(self):
        result = Campaign(
            MESH, ConvWorkload.paper_kernel(6, (3, 3, 2, 3)), sites=[(0, 0)]
        ).run()
        with pytest.raises(ValueError):
            render_conv_pattern(result.experiments[0].pattern, batch=5)
