"""Unit tests for spatial statistics and cross-campaign summaries."""

import numpy as np
import pytest

from repro.analysis.spatial import (
    BoundingBox,
    bounding_box,
    col_histogram,
    patterns_translation_equivalent,
    per_tile_counts,
    row_histogram,
)
from repro.analysis.stats import summarize, summary_table
from repro.core.campaign import Campaign, GemmWorkload
from repro.core.classifier import PatternClass
from repro.core.fault_patterns import extract_pattern
from repro.ops.tiling import plan_gemm_tiling
from repro.systolic import Dataflow, MeshConfig

MESH = MeshConfig(4, 4)


def _pattern(mask, m=None, n=None, dataflow=Dataflow.WEIGHT_STATIONARY):
    m = m or mask.shape[0]
    n = n or mask.shape[1]
    plan = plan_gemm_tiling(m, 4, n, MESH, dataflow)
    return extract_pattern(
        np.zeros(mask.shape, np.int64), np.where(mask, 1, 0), plan=plan
    )


class TestBoundingBox:
    def test_masked_pattern_has_no_box(self):
        assert bounding_box(_pattern(np.zeros((4, 4), bool))) is None

    def test_column_box(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:, 2] = True
        box = bounding_box(_pattern(mask))
        assert box == BoundingBox(top=0, left=2, bottom=3, right=2)
        assert box.height == 4 and box.width == 1 and box.area == 4


class TestHistograms:
    def test_row_and_col_histograms(self):
        mask = np.zeros((3, 4), dtype=bool)
        mask[0, 1] = mask[2, 1] = mask[2, 3] = True
        pattern = _pattern(mask)
        assert row_histogram(pattern).tolist() == [1, 0, 2]
        assert col_histogram(pattern).tolist() == [0, 2, 0, 1]


class TestPerTileCounts:
    def test_tiled_column_counts(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:, 1] = True
        mask[:, 5] = True
        counts = per_tile_counts(_pattern(mask))
        assert counts.shape == (2, 2)
        assert np.all(counts == 4)

    def test_requires_plan(self):
        pattern = extract_pattern(np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            per_tile_counts(pattern)


class TestTranslationSymmetry:
    def test_column_shift(self):
        a = np.zeros((4, 4), dtype=bool)
        b = np.zeros((4, 4), dtype=bool)
        a[:, 1] = True
        b[:, 3] = True
        assert patterns_translation_equivalent(
            _pattern(a), _pattern(b), row_shift=0, col_shift=2
        )
        assert not patterns_translation_equivalent(
            _pattern(a), _pattern(b), row_shift=0, col_shift=1
        )

    def test_campaign_patterns_are_translations(self):
        """The paper's symmetry claim, verified on real campaign output."""
        result = Campaign(
            MESH, GemmWorkload.square(4, Dataflow.OUTPUT_STATIONARY)
        ).run()
        base = result.result_at(0, 0).pattern
        for experiment in result.experiments:
            assert patterns_translation_equivalent(
                base,
                experiment.pattern,
                row_shift=experiment.site.row,
                col_shift=experiment.site.col,
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            patterns_translation_equivalent(
                _pattern(np.zeros((4, 4), bool)),
                _pattern(np.zeros((2, 4), bool)),
                0,
                0,
            )


class TestSummaries:
    def test_summarize_fields(self):
        result = Campaign(
            MESH, GemmWorkload.square(4, Dataflow.WEIGHT_STATIONARY)
        ).run()
        summary = summarize("ws-16", result)
        assert summary.name == "ws-16"
        assert summary.experiments == 16
        assert summary.dominant_class is PatternClass.SINGLE_COLUMN
        assert summary.single_class
        assert summary.sdc_rate == 1.0

    def test_summary_table_renders_all_rows(self):
        campaigns = {
            str(df): Campaign(MESH, GemmWorkload.square(4, df)).run()
            for df in Dataflow
        }
        table = summary_table(campaigns)
        assert "OS" in table and "WS" in table
        assert "single-element" in table and "single-column" in table
