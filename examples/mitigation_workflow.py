#!/usr/bin/env python3
"""End-to-end mitigation workflow: detect -> locate -> work around.

A maintenance story built entirely on the paper's determinism result:

1. a DNN accelerator develops a stuck-at fault in the field; inference
   accuracy craters;
2. BIST test vectors expose the fault and the inverse predictor locates
   the faulty MAC exactly;
3. the scheduler off-lines the faulty column (MOZART-style) and reruns
   inference — accuracy restored, at a measured tile-overhead cost;
4. alternatively, ABFT-protected GEMMs detect/correct per-operation.

Run:  python examples/mitigation_workflow.py
"""

import numpy as np

from repro import Dataflow, FaultInjector, FaultSite, MeshConfig
from repro.faults.injector import NO_FAULTS
from repro.mitigation import AbftGemm, OffliningGemm, run_bist
from repro.nn import build_dense_classifier, make_digits
from repro.nn.backends import SystolicBackend
from repro.ops import reference_gemm
from repro.systolic import FunctionalSimulator

MESH = MeshConfig.paper()
WS = Dataflow.WEIGHT_STATIONARY

#: The field failure: a stuck-at-1 on bit 28 of MAC(3, 6)'s adder output.
FAULT_SITE = FaultSite(3, 6, "sum", 28)


class OffliningBackend(SystolicBackend):
    """An inference backend that routes GEMMs around off-lined columns."""

    def __init__(self, mesh, injector, faulty_macs):
        super().__init__(mesh, injector, WS)
        self._offlining = OffliningGemm(self._engine, WS, faulty_macs)

    def gemm(self, a, b):
        return self._offlining(a, b).output


def main() -> None:
    x, y = make_digits(300, noise=0.03, seed=7)
    injector = FaultInjector.single_stuck_at(FAULT_SITE, 1)

    model = build_dense_classifier()
    model.set_backend(SystolicBackend(MESH))
    healthy = model.evaluate(x, y)
    print(f"1. healthy accelerator        : {100 * healthy:.1f}% accuracy")

    model.set_backend(SystolicBackend(MESH, injector, WS))
    broken = model.evaluate(x, y)
    print(f"   after the field fault      : {100 * broken:.1f}% accuracy\n")

    print("2. running BIST ...")
    report = run_bist(MESH, injector)
    print(f"   {report.describe()}")
    assert report.faulty_macs == ((FAULT_SITE.row, FAULT_SITE.col),)

    print("\n3. off-lining the faulty column and re-running inference ...")
    model.set_backend(OffliningBackend(MESH, injector, report.faulty_macs))
    restored = model.evaluate(x, y)
    sample = OffliningGemm(
        FunctionalSimulator(MESH, injector), WS, report.faulty_macs
    )(
        np.ones((64, 16), dtype=np.int64), np.ones((16, 16), dtype=np.int64)
    )
    print(f"   restored accuracy          : {100 * restored:.1f}%")
    print(f"   tile overhead              : {sample.overhead_ratio:.2f}x")

    print("\n4. per-operation ABFT on the faulty mesh (OS dataflow):")
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, size=(12, 12))
    b = rng.integers(-128, 128, size=(12, 12))
    abft = AbftGemm(
        FunctionalSimulator(MESH, injector), Dataflow.OUTPUT_STATIONARY
    )(a, b)
    ok = np.array_equal(abft.output, reference_gemm(a, b))
    print(f"   verdict: {abft.verdict} at {abft.correction_location}; "
          f"output golden: {ok}")


if __name__ == "__main__":
    main()
