#!/usr/bin/env python3
"""Fault-pattern atlas: every class of the paper's taxonomy, rendered.

Reproduces the full Fig. 3 storyline as an ASCII atlas: for each of the
six pattern classes (plus MASKED), the configuration that produces it, the
fault that was injected, and the rendered fault map with tile boundaries.

Run:  python examples/fault_pattern_atlas.py
"""

from repro import (
    Campaign,
    ConvWorkload,
    Dataflow,
    GemmWorkload,
    MeshConfig,
)
from repro.analysis import render_conv_pattern, render_gemm_pattern

MESH16 = MeshConfig.paper()
MESH4 = MeshConfig(rows=4, cols=4)
OS = Dataflow.OUTPUT_STATIONARY
WS = Dataflow.WEIGHT_STATIONARY

#: (title, mesh, workload, fault site, conv?) — one entry per taxonomy class.
ATLAS = [
    ("single-element (Fig. 3b): GEMM 16x16, OS",
     MESH16, GemmWorkload.square(16, OS), (5, 9), False),
    ("single-element multi-tile (Fig. 3d): GEMM 32x32, OS",
     MESH16, GemmWorkload.square(32, OS), (5, 9), False),
    ("single-column (Fig. 3a): GEMM 16x16, WS",
     MESH16, GemmWorkload.square(16, WS), (5, 9), False),
    ("single-column multi-tile (Fig. 3c): GEMM 32x32, WS",
     MESH16, GemmWorkload.square(32, WS), (5, 9), False),
    ("single-channel (Fig. 3e): Conv 3x3x3x3, WS, input 8x8",
     MESH16, ConvWorkload.paper_kernel(8, (3, 3, 3, 3)), (5, 1), True),
    ("multi-channel (Fig. 3f/3g): Conv 3x3x3x8, WS on a 4x4 mesh",
     MESH4, ConvWorkload.paper_kernel(8, (3, 3, 3, 8)), (1, 2), True),
    ("masked: Conv 3x3x3x3 fault in an unused mesh column",
     MESH16, ConvWorkload.paper_kernel(8, (3, 3, 3, 3)), (5, 12), True),
]


def main() -> None:
    for title, mesh, workload, site, is_conv in ATLAS:
        result = Campaign(mesh, workload, sites=[site]).run()
        experiment = result.experiments[0]
        print("=" * 72)
        print(title)
        print(f"fault: {experiment.site}  ->  class: {experiment.pattern_class}")
        print("-" * 72)
        if experiment.num_corrupted == 0:
            print("(no output corruption — the fault is architecturally masked)")
        elif is_conv:
            print(render_conv_pattern(experiment.pattern))
        else:
            print(render_gemm_pattern(experiment.pattern))
        print()


if __name__ == "__main__":
    main()
