#!/usr/bin/env python3
"""LLTFI-style integration: derive fault patterns on the fly.

The paper's proposed use-case (Section IV Discussion): application-level
fault injectors should "derive fault patterns on the fly for various
systolic array sizes and data mapping schemes, as opposed to hard-coding
the abstract fault pattern classes or ignoring them."

This example plays the role of such a tool. For a convolution layer's
shape it derives the exact corruption pattern of a random stuck-at fault
for three hardware targets — including a 128x128 array, ten times larger
than what the paper's FPGA could synthesise — and injects it into the
layer's output, all without any hardware simulation.

Run:  python examples/lltfi_integration.py
"""

import numpy as np

from repro import ConvGeometry, Dataflow, FaultSite, MeshConfig
from repro.appfi import AppLevelInjector, HardwareModel
from repro.core.reports import format_table


def main() -> None:
    # A ResNet-style layer: 64 output channels over a 56x56 feature map.
    geometry = ConvGeometry(n=1, c=64, h=56, w=56, k=64, r=3, s=3, padding=1)
    print(
        f"layer: conv {geometry.r}x{geometry.s}x{geometry.c}x{geometry.k} "
        f"on {geometry.h}x{geometry.w} input "
        f"(lowered GEMM: {geometry.gemm_m}x{geometry.gemm_k}x{geometry.gemm_n})\n"
    )

    rng = np.random.default_rng(3)
    rows = []
    for mesh_size in (16, 32, 128):
        for dataflow in Dataflow:
            model = HardwareModel(
                MeshConfig(mesh_size, mesh_size), dataflow
            )
            site = model.random_site(rng)
            derived = model.derive_conv(geometry, site)
            rows.append(
                (
                    f"{mesh_size}x{mesh_size}",
                    str(dataflow),
                    str(site),
                    str(derived.pattern_class),
                    str(derived.prediction.channels) or "-",
                )
            )
    print(format_table(
        ("array", "dataflow", "fault site", "derived class", "channels hit"),
        rows,
    ))

    # Now actually corrupt a layer output, TensorFI-style.
    print("\ninjecting into the layer output (16x16 WS array) ...")
    injector = AppLevelInjector(
        MeshConfig(16, 16), Dataflow.WEIGHT_STATIONARY, bit=24, seed=1
    )
    golden = np.zeros((geometry.n, geometry.k, geometry.p, geometry.q),
                      dtype=np.int64)
    corrupted = injector.inject_conv(golden, geometry,
                                     site=FaultSite(2, 11, "sum", 24))
    record = injector.last
    changed = sorted(set(np.where((golden != corrupted).any(axis=(0, 2, 3)))[0]))
    print(f"pattern class     : {record.pattern.pattern_class}")
    print(f"corrupted channels: {changed}")
    print(f"corrupted cells   : {record.cells_corrupted} "
          f"of {golden.size} ({record.cells_corrupted / golden.size:.2%})")


if __name__ == "__main__":
    main()
