#!/usr/bin/env python3
"""Tour of the Gemmini-like accelerator stack (the paper's Fig. 2).

Runs a convolution end to end through the functional accelerator model —
host memory, DMA, scratchpad, PRELOAD/COMPUTE command streams, accumulator
SRAM — first golden, then with a stuck-at fault in the mesh, and prints the
utilisation report plus a cycle-level waveform of the faulty MAC's datapath
signals.

Run:  python examples/accelerator_tour.py
"""

import numpy as np

from repro import Dataflow, FaultInjector, FaultSite, GemminiAccelerator, MeshConfig
from repro.core.reports import format_table
from repro.systolic import CycleSimulator
from repro.systolic.trace import TraceRecorder


def main() -> None:
    mesh = MeshConfig.paper()
    rng = np.random.default_rng(0)
    x = rng.integers(-64, 64, size=(1, 3, 12, 12))
    w = rng.integers(-8, 8, size=(8, 3, 3, 3))

    print("=== golden run through the full stack ===\n")
    accel = GemminiAccelerator(mesh)
    golden = accel.conv2d(x, w, padding=1)
    stats = accel.stats()
    print(format_table(
        ("counter", "value"),
        [
            ("commands executed", stats.controller.commands),
            ("tile computes", stats.controller.computes),
            ("mesh cycles", stats.mesh_cycles),
            ("DMA bytes in", stats.dma_bytes_in),
            ("DMA bytes out", stats.dma_bytes_out),
            ("scratchpad row writes", stats.scratchpad_writes),
            ("accumulator row writes", stats.accumulator_writes),
        ],
    ))

    print("\n=== same convolution with a stuck-at fault in MAC(2, 5) ===\n")
    injector = FaultInjector.single_stuck_at(FaultSite(2, 5, "sum", 22), 1)
    faulty_accel = GemminiAccelerator(mesh, injector=injector)
    faulty = faulty_accel.conv2d(x, w, padding=1)
    corrupted_channels = sorted(
        set(np.where((golden != faulty).any(axis=(0, 2, 3)))[0])
    )
    print(f"corrupted output channels: {corrupted_channels}")
    print(f"corrupted cells          : {int((golden != faulty).sum())} "
          f"of {golden.size}")

    print("\n=== waveform of the faulty MAC (first 14 cycles) ===\n")
    trace = TraceRecorder.for_mac(2, 5)
    sim = CycleSimulator(mesh, injector=injector, probe=trace)
    a = np.ones((4, 4), dtype=np.int64)
    sim.matmul(a, a, Dataflow.WEIGHT_STATIONARY)
    print(trace.render(max_cycles=14))
    print("\nNote bit 22 (value 4194304) forced high in every `sum` drive.")


if __name__ == "__main__":
    main()
