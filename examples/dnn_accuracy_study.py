#!/usr/bin/env python3
"""DNN accuracy under permanent faults — the paper's motivation, live.

Runs the synthetic-digits classifiers (a Dense matched-filter network and a
small fixed-feature CNN) on a fault-injectable 16x16 systolic mesh and
sweeps the number of stuck-at-faulty MAC units, reproducing the
Zhang-et-al.-style accuracy cliff the paper's introduction cites. Then
cross-checks the verdict with the application-level pattern injector —
no hardware simulation — as the paper proposes for TensorFI/LLTFI.

Run:  python examples/dnn_accuracy_study.py
"""

import numpy as np

from repro import Dataflow, FaultInjector, FaultSet, FaultSite, MeshConfig
from repro.appfi import attach_permanent_fault, detach_faults
from repro.core.reports import format_table
from repro.faults import StuckAtFault
from repro.nn import (
    SystolicBackend,
    build_conv_classifier,
    build_dense_classifier,
    make_digits,
)

MESH = MeshConfig.paper()
WS = Dataflow.WEIGHT_STATIONARY


def random_faults(count: int, rng: np.random.Generator) -> FaultSet:
    """Stuck-at-1 faults in the mesh region the classifier actually uses."""
    sites = set()
    while len(sites) < count:
        sites.add((int(rng.integers(0, 16)), int(rng.integers(0, 10))))
    return FaultSet.from_iterable(
        StuckAtFault(site=FaultSite(r, c, "sum", 28), stuck_value=1)
        for r, c in sites
    )


def main() -> None:
    x, y = make_digits(300, noise=0.03, seed=21)
    rng = np.random.default_rng(99)

    print("=== accuracy vs number of faulty MACs (RTL-equivalent mesh) ===\n")
    rows = []
    for name, model in (
        ("dense", build_dense_classifier()),
        ("conv", build_conv_classifier()),
    ):
        accuracies = []
        for num_faults in (0, 1, 2, 4, 8):
            injector = (
                FaultInjector()
                if num_faults == 0
                else FaultInjector(random_faults(num_faults, rng))
            )
            model.set_backend(SystolicBackend(MESH, injector, WS))
            accuracies.append(f"{100 * model.evaluate(x, y):.1f}%")
        rows.append([name] + accuracies)
    print(format_table(("model", "0 faults", "1", "2", "4", "8"), rows))

    print("\n=== same study at application level (pattern injection) ===\n")
    model = build_dense_classifier()
    baseline = model.evaluate(x, y)
    site = FaultSite(0, 4, "sum", 28)
    injector = attach_permanent_fault(model, MESH, site, bit=28)
    app_accuracy = model.evaluate(x, y)
    detach_faults(model)
    print(f"golden accuracy          : {100 * baseline:.1f}%")
    print(f"app-level fault at {site}: {100 * app_accuracy:.1f}%")
    print(f"operations corrupted     : {len(injector.history)}")
    print(
        "\nBoth abstraction levels agree: a single faulty MAC "
        f"({1 / 256:.2%} of the mesh) is catastrophic."
    )


if __name__ == "__main__":
    main()
