#!/usr/bin/env python3
"""Reproduce the paper's entire evaluation in one run.

Executes every Table I configuration (RQ1-RQ3, the 112x112 sizes included)
as an exhaustive 256-fault campaign, checks each outcome against the
analytical predictor, and prints the Section IV summary. This is the
programmatic equivalent of the study that took the paper 49 FPGA-hours.

Run:  python examples/full_study.py            (~1 minute)
      python examples/full_study.py --fast     (diagonal sweep, seconds)
"""

import sys
import time

from repro.core import diagnose  # noqa: F401  (re-exported surface check)
from repro.core.sampling import diagonal_sites
from repro.core.study import run_paper_study
from repro.systolic import MeshConfig


def main() -> int:
    fast = "--fast" in sys.argv
    mesh = MeshConfig.paper()
    sites = diagonal_sites(mesh) if fast else None

    start = time.perf_counter()
    report = run_paper_study(
        mesh=mesh, sites=sites, include_large=not fast
    )
    elapsed = time.perf_counter() - start

    print(report.to_text())
    experiments = sum(len(e.result.experiments) for e in report.entries)
    print(
        f"\n{experiments} FI experiments across {len(report.entries)} "
        f"configurations in {elapsed:.1f} s "
        f"(the paper's campaigns took ~49 h on AWS F1 FPGAs)."
    )
    return 0 if report.all_match_theory else 1


if __name__ == "__main__":
    raise SystemExit(main())
