#!/usr/bin/env python3
"""Quickstart: inject one stuck-at fault and watch the pattern appear.

Builds the paper's 16x16 INT8 systolic array, injects a single stuck-at-1
fault into the adder output of one MAC unit (the paper's fault model), runs
a GEMM under both dataflows, and prints the resulting fault patterns with
their taxonomy classes — the OS single-element vs WS single-column contrast
of the paper's RQ1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Campaign,
    Dataflow,
    FaultSpec,
    GemmWorkload,
    MeshConfig,
    predict_pattern,
)
from repro.analysis import render_gemm_pattern


def main() -> None:
    mesh = MeshConfig.paper()  # 16x16, INT8 operands, INT32 accumulators
    fault = FaultSpec(signal="sum", bit=20, stuck_value=1)
    print(f"mesh : {mesh.rows}x{mesh.cols} ({mesh.input_dtype})")
    print(f"fault: {fault.describe()} at MAC(5, 9)\n")

    for dataflow in Dataflow:
        workload = GemmWorkload.square(16, dataflow)
        campaign = Campaign(mesh, workload, fault_spec=fault, sites=[(5, 9)])
        result = campaign.run()
        experiment = result.experiments[0]

        print(f"--- {workload.describe()} ---")
        print(f"pattern class : {experiment.pattern_class}")
        print(f"corrupted     : {experiment.num_corrupted} of 256 elements")
        print(render_gemm_pattern(experiment.pattern))

        # The same pattern, predicted analytically — no simulation at all.
        predicted = predict_pattern(experiment.site, result.plan)
        agrees = np.array_equal(predicted.support, experiment.pattern.mask)
        print(f"analytical prediction agrees exactly: {agrees}\n")


if __name__ == "__main__":
    main()
